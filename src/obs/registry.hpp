// Unified observability layer — process-wide metric registry (DESIGN.md §10).
//
// The paper's evaluation is one long exercise in attributing time and I/O
// (per-iteration makespan, pruning-clause effectiveness, SEM bytes read,
// NUMA locality); before this layer those counters lived in ad-hoc structs
// scattered across the scheduler, SEM caches, the stream subsystem and
// Result::counters. obs::Registry is the single place they all land — the
// ClickHouse ProfileEvents discipline: named process-wide counters, cheap
// to bump anywhere, queryable and exportable per run.
//
// Three metric kinds:
//   * Counter   — monotonic u64, sharded over kShards cache-line-padded
//                 cells (relaxed atomics; a bump never contends with other
//                 threads' bumps). value() sums the cells — integer adds
//                 commute, so the total is independent of which thread
//                 landed in which shard.
//   * Gauge     — a point-in-time i64 (memory footprints, depths).
//   * Histogram — log-bucketed u64 samples (4 sub-buckets per power of
//                 two, <= 25% relative bucket width) with p50/p95/p99
//                 extraction. Latency samples are recorded in microseconds
//                 by convention (".._us" names).
//
// Determinism taxonomy (the repo-wide stat/timing split of DESIGN.md §6,
// applied per metric): every metric is declared at registration as either
//   * kDeterministic — a pure function of (inputs, Options): distance
//     computations, pruning-clause skips, demand-side I/O bytes, row-cache
//     hits, rows/batches ingested, kernel dispatch counts, collective
//     message/byte counts; or
//   * kTiming — wall-clock durations and anything that races on the thread
//     schedule: steal attribution, page-cache hits/misses (concurrent
//     workers race to fault the same page), supply-side bytes read, memory
//     peaks, every histogram of latencies.
// Snapshot::to_json() splits the two into separate top-level objects so CI
// can strip the "timing" object and diff the deterministic half bit-for-bit
// across runs, exactly as knor_bench --strip does for suite stats.
//
// Compile-out: configuring with -DKNOR_OBS=OFF defines KNOR_NO_OBS and
// turns every bump into an inline no-op (registration returns dummies,
// snapshots are empty) — the overhead-guard CI job pins the on-vs-off
// delta on the kernel microbenches.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace knor::obs {

/// Determinism class, fixed at registration (see the header comment).
enum class Det { kDeterministic, kTiming };

enum class Kind { kCounter, kGauge, kHistogram };

const char* to_string(Det det);
const char* to_string(Kind kind);

/// Monotonic counter, sharded to keep concurrent bumps off each other's
/// cache lines. Handles are obtained from a Registry and stay valid for the
/// registry's lifetime; hot paths hoist the reference out of loops.
class Counter {
 public:
  static constexpr int kShards = 16;

  void add(std::uint64_t v) {
#ifndef KNOR_NO_OBS
    cells_[shard()].v.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void inc() { add(1); }

  /// Sum over shards. Exact once writers are quiescent; a mid-run read is
  /// a consistent-enough lower bound (relaxed, never torn per-cell).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class Registry;
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Calling thread's shard: a small sequential id assigned on first use,
  /// wrapped to kShards. Which shard a thread lands in never changes the
  /// sum (integer adds commute).
  static int shard();

  struct alignas(kCacheLine) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_;
};

/// Point-in-time signed value (set/add). Single atomic — gauges are
/// updated at phase boundaries, not in hot loops.
class Gauge {
 public:
  void set(std::int64_t v) {
#ifndef KNOR_NO_OBS
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t v) {
#ifndef KNOR_NO_OBS
    v_.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram of non-negative u64 samples.
///
/// Bucket layout (kSubBits = 2 -> 4 sub-buckets per octave): values
/// 0..3 get exact buckets 0..3; a larger v with msb m lands in bucket
/// ((m - 1) << 2) + ((v >> (m - 2)) & 3), so every bucket spans at most
/// [lo, 1.25*lo). The layout is a pure function of the value — identical
/// across threads and runs — and bucket counts are relaxed atomic adds, so
/// merged counts are schedule-independent.
class Histogram {
 public:
  static constexpr int kSubBits = 2;
  static constexpr int kSub = 1 << kSubBits;
  /// Buckets 0..kSub-1 are exact small values; 62 octaves of kSub above.
  static constexpr int kBuckets = ((63 - kSubBits) << kSubBits) + kSub + kSub;

  void record(std::uint64_t v) {
#ifndef KNOR_NO_OBS
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  /// Bucket index of `v` (pure function; tested against a sorted-vector
  /// oracle in tests/obs_test.cpp).
  static int bucket_of(std::uint64_t v);
  /// Smallest value mapping to bucket `b`.
  static std::uint64_t bucket_lo(int b);
  /// Largest value mapping to bucket `b` (inclusive).
  static std::uint64_t bucket_hi(int b);

 private:
  friend class Registry;
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time histogram contents inside a Snapshot. Buckets are sparse
/// (index, count) pairs in ascending index order.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::pair<std::uint16_t, std::uint64_t>> buckets;

  /// Quantile estimate (q in [0,1]): the midpoint of the bucket holding
  /// the rank-ceil(q*count) sample. Within 25% of the true sample value by
  /// the bucket-width bound; exact for values < 4. NaN when empty.
  double quantile(double q) const;
};

/// One metric's value at snapshot time.
struct Metric {
  std::string name;
  Kind kind = Kind::kCounter;
  Det det = Det::kDeterministic;
  std::int64_t value = 0;  ///< counter (>=0) or gauge
  HistogramData hist;      ///< kHistogram only
};

/// Point-in-time copy of a registry, sorted by metric name (deterministic
/// serialization order). Attached per run to Result::metrics so callers and
/// tests can assert on cache/pruning counters without reaching into
/// process globals.
struct Snapshot {
  std::vector<Metric> metrics;

  const Metric* find(const std::string& name) const;
  /// Counter/gauge value by name; `dflt` when absent or a histogram.
  std::int64_t value_or(const std::string& name, std::int64_t dflt) const;
  /// Histogram quantile by name (see HistogramData::quantile); `dflt` when
  /// the metric is absent, not a histogram, or empty. The p50/p99 readout
  /// the serving front end and its tests use.
  double quantile_or(const std::string& name, double q, double dflt) const;
  bool empty() const { return metrics.empty(); }

  /// Serialize as the knor-metrics JSON document: two top-level objects,
  /// "deterministic" and "timing", each mapping metric name -> value
  /// (counters/gauges as integers, histograms as {count, sum, max, p50,
  /// p95, p99, buckets}). Stripping "timing" canonicalizes the document
  /// for determinism diffs (knor_bench --strip does exactly that).
  std::string to_json(int indent = 2) const;
};

/// The per-run delta: counters and histograms subtract (bucket-wise),
/// gauges take `after`'s value. Metrics absent from `before` pass through.
Snapshot diff(const Snapshot& before, const Snapshot& after);

/// Named-metric registry. Registration is idempotent (same name returns
/// the same handle; the first registration fixes kind and determinism
/// class — a mismatched re-registration throws, so one name can never
/// straddle the deterministic/timing partition).
class Registry {
 public:
  /// The process-wide registry every subsystem publishes into.
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, Det det);
  Gauge& gauge(const std::string& name, Det det);
  Histogram& histogram(const std::string& name, Det det);

  /// Point-in-time copy of every registered metric, sorted by name.
  Snapshot snapshot() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace knor::obs
