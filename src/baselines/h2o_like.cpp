#include <cstring>
#include <vector>

#include "baselines/frameworks.hpp"
#include "common/timer.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/run_metrics.hpp"
#include "numa/partitioner.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor::baselines {

Result h2o_like(ConstMatrixView data, const Options& opts) {
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  knor::detail::RunMetricsScope run_metrics;
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;
  const auto topo = numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  DenseMatrix cur = init_centroids(data, opts);
  kernels::CentroidPack pack;
  DenseMatrix sums(static_cast<index_t>(k), d);
  std::vector<index_t> counts(static_cast<std::size_t>(k));

  numa::Partitioner parts(n, T, topo);
  sched::Scheduler sched(T, topo, /*bind=*/false);
  std::vector<std::uint64_t> tchanged(static_cast<std::size_t>(T));
  std::vector<double> tbusy(static_cast<std::size_t>(T), 0.0);

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    pack.pack(cur);

    // Phase I: parallel assignment only. Global barrier at the join.
    sched.run([&](int tid) {
      const double cpu_start = thread_cpu_seconds();
      tchanged[static_cast<std::size_t>(tid)] = 0;
      const numa::RowRange rows = parts.thread_rows(tid);
      for (index_t r = rows.begin; r < rows.end; ++r) {
        const cluster_t best = K.nearest_blocked(data.row(r), pack, nullptr);
        if (best != res.assignments[r])
          ++tchanged[static_cast<std::size_t>(tid)];
        res.assignments[r] = best;
      }
      tbusy[static_cast<std::size_t>(tid)] +=
          thread_cpu_seconds() - cpu_start;
    });
    res.counters.dist_computations +=
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);

    // Phase II: the centralized driver accumulates all n rows itself — the
    // master-worker reduction bottleneck: O(nd) serial work per iteration.
    const double driver_start = thread_cpu_seconds();
    std::memset(sums.data(), 0, sums.size() * sizeof(value_t));
    std::fill(counts.begin(), counts.end(), 0);
    for (index_t r = 0; r < n; ++r) {
      const cluster_t c = res.assignments[r];
      value_t* s = sums.row(c);
      const value_t* v = data.row(r);
      for (index_t j = 0; j < d; ++j) s[j] += v[j];
      ++counts[c];
    }
    res.cluster_sizes.assign(counts.begin(), counts.end());
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) continue;
      value_t* dst = cur.row(static_cast<index_t>(c));
      const value_t inv =
          static_cast<value_t>(1.0) /
          static_cast<value_t>(counts[static_cast<std::size_t>(c)]);
      const value_t* s = sums.row(static_cast<index_t>(c));
      for (index_t j = 0; j < d; ++j) dst[j] = s[j] * inv;
    }

    res.driver_serial_s += thread_cpu_seconds() - driver_start;

    std::uint64_t changed = 0;
    for (auto c : tchanged) changed += c;
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (index_t r = 0; r < n; ++r)
    res.energy += K.dist_sq(data.row(r), cur.row(res.assignments[r]), d);
  res.thread_busy_s = tbusy;
  res.centroids = std::move(cur);
  run_metrics.finish(res);
  return res;
}

}  // namespace knor::baselines
