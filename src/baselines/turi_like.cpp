#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "baselines/frameworks.hpp"
#include "common/timer.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/run_metrics.hpp"
#include "numa/partitioner.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor::baselines {
namespace {

// Per-row boxed storage behind a virtual interface — the SFrame-style
// unified column/row abstraction whose indirection and allocation overhead
// the stand-in models.
class RowObject {
 public:
  virtual ~RowObject() = default;
  virtual const value_t* values() const = 0;
  virtual index_t dim() const = 0;
};

class DenseRowObject final : public RowObject {
 public:
  DenseRowObject(const value_t* v, index_t d) : values_(v, v + d) {}
  const value_t* values() const override { return values_.data(); }
  index_t dim() const override {
    return static_cast<index_t>(values_.size());
  }

 private:
  std::vector<value_t> values_;
};

}  // namespace

Result turi_like(ConstMatrixView data, const Options& opts) {
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  knor::detail::RunMetricsScope run_metrics;
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;
  const auto topo = numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();

  // Ingest: box every row individually (the framework's storage layer).
  std::vector<std::unique_ptr<RowObject>> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r)
    rows.push_back(std::make_unique<DenseRowObject>(data.row(r), d));

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  DenseMatrix cur = init_centroids(data, opts);
  DenseMatrix sums(static_cast<index_t>(k), d);
  std::vector<index_t> counts(static_cast<std::size_t>(k));
  kernels::CentroidPack pack;

  numa::Partitioner parts(n, T, topo);
  sched::Scheduler sched(T, topo, /*bind=*/false);
  std::vector<std::uint64_t> tchanged(static_cast<std::size_t>(T));
  std::vector<double> tbusy(static_cast<std::size_t>(T), 0.0);
  // Per-thread accumulation through row *copies* (the engine materializes
  // row values out of its storage abstraction on every access).
  std::vector<DenseMatrix> tsums;
  std::vector<std::vector<index_t>> tcounts(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    tsums.emplace_back(static_cast<index_t>(k), d);
    tcounts[static_cast<std::size_t>(t)].assign(static_cast<std::size_t>(k),
                                                0);
  }

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    pack.pack(cur);
    sched.run([&](int tid) {
      const double cpu_start = thread_cpu_seconds();
      auto& ts = tsums[static_cast<std::size_t>(tid)];
      auto& tc = tcounts[static_cast<std::size_t>(tid)];
      std::memset(ts.data(), 0, ts.size() * sizeof(value_t));
      std::fill(tc.begin(), tc.end(), 0);
      tchanged[static_cast<std::size_t>(tid)] = 0;
      std::vector<value_t> scratch(static_cast<std::size_t>(d));
      const numa::RowRange rr = parts.thread_rows(tid);
      for (index_t r = rr.begin; r < rr.end; ++r) {
        // Virtual access + defensive copy into scratch.
        const RowObject& obj = *rows[static_cast<std::size_t>(r)];
        std::copy(obj.values(), obj.values() + obj.dim(), scratch.begin());
        const cluster_t best = K.nearest_blocked(scratch.data(), pack, nullptr);
        if (best != res.assignments[r])
          ++tchanged[static_cast<std::size_t>(tid)];
        res.assignments[r] = best;
        value_t* s = ts.row(best);
        for (index_t j = 0; j < d; ++j) s[j] += scratch[j];
        ++tc[best];
      }
      tbusy[static_cast<std::size_t>(tid)] +=
          thread_cpu_seconds() - cpu_start;
    });
    res.counters.dist_computations +=
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);

    // Driver-side merge.
    const double driver_start = thread_cpu_seconds();
    std::memset(sums.data(), 0, sums.size() * sizeof(value_t));
    std::fill(counts.begin(), counts.end(), 0);
    for (int t = 0; t < T; ++t) {
      for (int c = 0; c < k; ++c) {
        const value_t* s = tsums[static_cast<std::size_t>(t)].row(
            static_cast<index_t>(c));
        value_t* dst = sums.row(static_cast<index_t>(c));
        for (index_t j = 0; j < d; ++j) dst[j] += s[j];
        counts[static_cast<std::size_t>(c)] +=
            tcounts[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
      }
    }
    res.cluster_sizes.assign(counts.begin(), counts.end());
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) continue;
      value_t* dst = cur.row(static_cast<index_t>(c));
      const value_t inv =
          static_cast<value_t>(1.0) /
          static_cast<value_t>(counts[static_cast<std::size_t>(c)]);
      const value_t* s = sums.row(static_cast<index_t>(c));
      for (index_t j = 0; j < d; ++j) dst[j] = s[j] * inv;
    }

    res.driver_serial_s += thread_cpu_seconds() - driver_start;

    std::uint64_t changed = 0;
    for (auto c : tchanged) changed += c;
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (index_t r = 0; r < n; ++r)
    res.energy += K.dist_sq(data.row(r), cur.row(res.assignments[r]), d);
  res.thread_busy_s = tbusy;
  res.centroids = std::move(cur);
  run_metrics.finish(res);
  return res;
}

}  // namespace knor::baselines
