// Behavioural stand-ins for the commercial/OSS frameworks the paper
// benchmarks against (MLlib, H2O, Turi — §8.7, §8.9).
//
// Substitution (DESIGN.md §1): the real frameworks are JVM/Python stacks
// that cannot run here; each stand-in isolates, over the *same* distance
// kernels as knor, the architectural behaviour the paper identifies as the
// reason that framework loses:
//
//  * mllib_like — MapReduce-style dataflow: the map phase materializes
//    (cluster, row-copy) intermediate pairs, a shuffle groups them into
//    per-cluster buckets (second copy), and a reduce phase — parallel over
//    at most k reducers — builds the centroids. Models Spark's shuffle
//    materialization, per-iteration data movement and reduce-side skew.
//  * h2o_like — two-phase parallel Lloyd's with a master-side reduction:
//    workers compute assignments, then a single driver thread accumulates
//    all n rows into the next centroids (the centralized master-worker
//    design the paper calls out).
//  * turi_like — per-row object overhead: rows are individually heap-boxed
//    and accessed through a virtual interface, defeating prefetching and
//    adding allocation pressure (the unified-data-structure overhead of
//    Turi/GraphLab's SFrame-style storage).
//
// None of the stand-ins prunes computation (the frameworks implement naive
// Lloyd's), so knori- (same algorithm, knor's parallelization) vs these is
// the apples-to-apples comparison the paper makes.
#pragma once

#include "core/kmeans_types.hpp"

namespace knor::baselines {

Result mllib_like(ConstMatrixView data, const Options& opts);
Result h2o_like(ConstMatrixView data, const Options& opts);
Result turi_like(ConstMatrixView data, const Options& opts);

}  // namespace knor::baselines
