#include <cstring>
#include <vector>

#include "baselines/frameworks.hpp"
#include "common/timer.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/run_metrics.hpp"
#include "numa/partitioner.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor::baselines {

Result mllib_like(ConstMatrixView data, const Options& opts) {
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  knor::detail::RunMetricsScope run_metrics;
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;
  const auto topo = numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  DenseMatrix cur = init_centroids(data, opts);
  kernels::CentroidPack pack;

  numa::Partitioner parts(n, T, topo);
  sched::Scheduler sched(T, topo, /*bind=*/false);

  // Map output: per-thread vectors of (key, value-copy) pairs — the
  // materialized intermediate data a shuffle-based engine produces.
  struct Pair {
    cluster_t key;
    std::vector<value_t> value;
  };
  std::vector<std::vector<Pair>> map_out(static_cast<std::size_t>(T));
  // Shuffle output: per-cluster buckets of row copies.
  std::vector<std::vector<std::vector<value_t>>> buckets(
      static_cast<std::size_t>(k));
  std::vector<std::uint64_t> tchanged(static_cast<std::size_t>(T));
  std::vector<double> tbusy(static_cast<std::size_t>(T), 0.0);

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    pack.pack(cur);

    // --- Map: assign, emit (cluster, row copy). ---
    sched.run([&](int tid) {
      const double cpu_start = thread_cpu_seconds();
      auto& out = map_out[static_cast<std::size_t>(tid)];
      out.clear();
      tchanged[static_cast<std::size_t>(tid)] = 0;
      const numa::RowRange rows = parts.thread_rows(tid);
      out.reserve(static_cast<std::size_t>(rows.size()));
      for (index_t r = rows.begin; r < rows.end; ++r) {
        const cluster_t best = K.nearest_blocked(data.row(r), pack, nullptr);
        if (best != res.assignments[r])
          ++tchanged[static_cast<std::size_t>(tid)];
        res.assignments[r] = best;
        Pair p;
        p.key = best;
        p.value.assign(data.row(r), data.row(r) + d);
        out.push_back(std::move(p));
      }
      tbusy[static_cast<std::size_t>(tid)] +=
          thread_cpu_seconds() - cpu_start;
    });
    res.counters.dist_computations +=
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);

    // --- Shuffle: group pairs by key (driver-side, second copy). ---
    const double shuffle_start = thread_cpu_seconds();
    for (auto& bucket : buckets) bucket.clear();
    for (auto& out : map_out)
      for (auto& pair : out)
        buckets[pair.key].push_back(std::move(pair.value));
    res.driver_serial_s += thread_cpu_seconds() - shuffle_start;

    // --- Reduce: one reducer per cluster; parallelism capped at k and
    // skewed by bucket sizes (the paper's reduce-phase skew). ---
    DenseMatrix next(static_cast<index_t>(k), d);
    std::vector<index_t> sizes(static_cast<std::size_t>(k));
    sched.run([&](int tid) {
      const double cpu_start = thread_cpu_seconds();
      for (int c = tid; c < k; c += T) {
        const auto& bucket = buckets[static_cast<std::size_t>(c)];
        sizes[static_cast<std::size_t>(c)] = bucket.size();
        value_t* dst = next.row(static_cast<index_t>(c));
        if (bucket.empty()) {
          std::memcpy(dst, cur.row(static_cast<index_t>(c)),
                      d * sizeof(value_t));
          continue;
        }
        for (const auto& row : bucket)
          for (index_t j = 0; j < d; ++j) dst[j] += row[j];
        const value_t inv =
            static_cast<value_t>(1.0) / static_cast<value_t>(bucket.size());
        for (index_t j = 0; j < d; ++j) dst[j] *= inv;
      }
      tbusy[static_cast<std::size_t>(tid)] +=
          thread_cpu_seconds() - cpu_start;
    });
    res.cluster_sizes = sizes;
    std::swap(cur, next);

    std::uint64_t changed = 0;
    for (auto c : tchanged) changed += c;
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (index_t r = 0; r < n; ++r)
    res.energy += K.dist_sq(data.row(r), cur.row(res.assignments[r]), d);
  res.thread_busy_s = tbusy;
  res.centroids = std::move(cur);
  run_metrics.finish(res);
  return res;
}

}  // namespace knor::baselines
