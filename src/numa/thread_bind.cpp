#include "numa/thread_bind.hpp"

#include <pthread.h>
#include <sched.h>

#include <thread>

#include "common/logger.hpp"

namespace knor::numa {
namespace {

int physical_cpu_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace

bool bind_current_thread_to_node(const Topology& topo, int node) {
  if (node < 0 || node >= topo.num_nodes()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any_physical = false;
  const int phys = physical_cpu_count();
  for (int cpu : topo.node(node).cpus) {
    if (cpu < phys) {
      CPU_SET(cpu, &set);
      any_physical = true;
    }
  }
  if (!any_physical) {
    // Simulated node with only virtual CPU ids — logical binding only.
    return true;
  }
  const int rc = pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  if (rc != 0) {
    KNOR_LOG_DEBUG("pthread_setaffinity_np failed rc=", rc);
    return false;
  }
  return true;
}

void unbind_current_thread(const Topology& topo) {
  cpu_set_t set;
  CPU_ZERO(&set);
  const int phys = physical_cpu_count();
  for (int cpu = 0; cpu < phys; ++cpu) CPU_SET(cpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  (void)topo;
}

}  // namespace knor::numa
