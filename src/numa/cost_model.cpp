#include "numa/cost_model.hpp"

namespace knor::numa {

std::atomic<std::uint32_t>& RemotePenalty::ns() {
  static std::atomic<std::uint32_t> penalty{0};
  return penalty;
}

void RemotePenalty::charge() {
  const std::uint32_t penalty = ns().load(std::memory_order_relaxed);
  if (penalty == 0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(penalty);
  while (std::chrono::steady_clock::now() < until) {
    // spin: emulates stalled cycles on a remote memory access
  }
}

}  // namespace knor::numa
