#include "numa/cost_model.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

namespace knor::numa {

namespace {

/// Ring metric for fabricated topologies: 10 local, 16 + 5 * hops remote
/// (shaped like a 4-socket SLIT so "nearer" victims exist on > 2 nodes).
int ring_distance(int a, int b, int n) {
  if (a == b) return 10;
  const int direct = a > b ? a - b : b - a;
  const int hops = std::min(direct, n - direct);
  return 16 + 5 * hops;
}

/// Read /sys/devices/system/node/node<id>/distance ("10 21 21 21"). Returns
/// false when the file is missing or malformed.
bool read_kernel_distances(int node, int n, std::vector<int>& row) {
  std::ifstream in("/sys/devices/system/node/node" + std::to_string(node) +
                   "/distance");
  if (!in) return false;
  std::string line;
  std::getline(in, line);
  std::istringstream fields(line);
  row.clear();
  int v;
  while (fields >> v) row.push_back(v);
  return static_cast<int>(row.size()) == n;
}

}  // namespace

NodeDistance::NodeDistance(const Topology& topo)
    : n_(topo.num_nodes()), d_(static_cast<std::size_t>(n_) * n_) {
  std::vector<int> row;
  for (int a = 0; a < n_; ++a) {
    const bool kernel = !topo.is_simulated() &&
                        read_kernel_distances(topo.node(a).id, n_, row);
    for (int b = 0; b < n_; ++b)
      d_[static_cast<std::size_t>(a) * n_ + b] =
          kernel ? row[static_cast<std::size_t>(b)] : ring_distance(a, b, n_);
  }
}

std::vector<int> NodeDistance::victim_order(int from) const {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n_ > 0 ? n_ - 1 : 0));
  for (int b = 0; b < n_; ++b)
    if (b != from) order.push_back(b);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return (*this)(from, a) < (*this)(from, b);
  });
  return order;
}

std::atomic<std::uint32_t>& RemotePenalty::ns() {
  static std::atomic<std::uint32_t> penalty{0};
  return penalty;
}

void RemotePenalty::charge() {
  const std::uint32_t penalty = ns().load(std::memory_order_relaxed);
  if (penalty == 0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(penalty);
  while (std::chrono::steady_clock::now() < until) {
    // spin: emulates stalled cycles on a remote memory access
  }
}

}  // namespace knor::numa
