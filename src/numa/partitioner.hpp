// Row partitioning across NUMA nodes and threads (Figure 1 of the paper):
// the dataset is split into T contiguous blocks; thread t owns block t and
// the block lives on thread t's NUMA node. alpha = n/T rows per thread,
// beta = T/N threads per node.
#pragma once

#include <cassert>
#include <vector>

#include "common/types.hpp"
#include "numa/topology.hpp"

namespace knor::numa {

struct RowRange {
  index_t begin = 0;
  index_t end = 0;  ///< exclusive
  index_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  bool contains(index_t r) const { return r >= begin && r < end; }
};

/// Static block partition of `n` rows over `parts` parts; part i gets
/// rows [i*n/parts, (i+1)*n/parts) — sizes differ by at most 1 row-block.
inline RowRange block_range(index_t n, int parts, int part) {
  assert(parts > 0 && part >= 0 && part < parts);
  const index_t p = static_cast<index_t>(parts);
  const index_t i = static_cast<index_t>(part);
  return {n * i / p, n * (i + 1) / p};
}

/// Maps threads to NUMA nodes and rows to threads, per Figure 1.
class Partitioner {
 public:
  Partitioner(index_t n, int threads, const Topology& topo)
      : n_(n), threads_(threads) {
    assert(threads > 0);
    const int nodes = topo.num_nodes();
    thread_node_.resize(static_cast<std::size_t>(threads));
    // Round-robin threads over nodes: thread t -> node t % N keeps
    // beta = T/N threads per node (the paper's layout).
    for (int t = 0; t < threads; ++t)
      thread_node_[static_cast<std::size_t>(t)] = t % nodes;
  }

  index_t n() const { return n_; }
  int threads() const { return threads_; }

  /// Rows owned by thread `t`.
  RowRange thread_rows(int t) const { return block_range(n_, threads_, t); }

  /// NUMA node thread `t` is bound to (and where its rows live).
  int node_of_thread(int t) const {
    return thread_node_[static_cast<std::size_t>(t)];
  }

  /// Owning thread of row `r`.
  int thread_of_row(index_t r) const {
    assert(r < n_);
    // Inverse of block_range: t = floor(r * threads / n) then fix up
    // boundary rounding.
    int t = static_cast<int>(r * static_cast<index_t>(threads_) / n_);
    while (t > 0 && thread_rows(t).begin > r) --t;
    while (t + 1 < threads_ && thread_rows(t).end <= r) ++t;
    return t;
  }

  /// NUMA node owning row `r`'s memory.
  int node_of_row(index_t r) const { return node_of_thread(thread_of_row(r)); }

 private:
  index_t n_;
  int threads_;
  std::vector<int> thread_node_;
};

}  // namespace knor::numa
