// Remote-access accounting and (optional) latency emulation.
//
// Substitution (DESIGN.md §1): the reproduction host has one physical NUMA
// node, so the *latency asymmetry* that makes the paper's NUMA-oblivious
// baseline slow does not exist physically. This cost model restores it in
// two ways:
//   1. Accounting — kernels instrumented with AccessCounter record, per
//      thread, how many row accesses were node-local vs remote. The Figure 4
//      bench reports these counts next to wall time; they differentiate the
//      designs exactly the way physical latency would.
//   2. Emulation — when enabled (bench-only), each remote row access charges
//      a configurable penalty in nanoseconds of spin, approximating the
//      ~1.5-2x remote/local latency ratio of a 4-socket Xeon.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "numa/topology.hpp"

namespace knor::numa {

/// SLIT-style inter-node distance matrix, the victim-selection input for
/// the work-stealing scheduler: when a worker's own node runs dry it steals
/// from the *cheapest* remote node first. Detected topologies read the
/// kernel's table (/sys/devices/system/node/nodeX/distance); simulated or
/// unreadable ones synthesize a ring metric (local 10, remote 16 + 5 * ring
/// hops) so victim ordering stays meaningful on fabricated layouts.
class NodeDistance {
 public:
  explicit NodeDistance(const Topology& topo);

  int nodes() const { return n_; }
  int operator()(int from, int to) const {
    return d_[static_cast<std::size_t>(from) * n_ + to];
  }

  /// All nodes except `from`, ascending by distance (ties: lower node id).
  std::vector<int> victim_order(int from) const;

 private:
  int n_ = 0;
  std::vector<int> d_;  ///< n_ x n_ row-major
};

struct AccessCounts {
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  std::uint64_t total() const { return local + remote; }
  double remote_fraction() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(remote) /
                              static_cast<double>(total());
  }
};

/// Per-thread access counters, padded to avoid false sharing.
class AccessCounter {
 public:
  explicit AccessCounter(int threads) : slots_(static_cast<std::size_t>(threads)) {}

  void record(int thread, bool local) {
    auto& s = slots_[static_cast<std::size_t>(thread)];
    if (local)
      ++s.local;
    else
      ++s.remote;
  }

  AccessCounts thread_counts(int thread) const {
    const auto& s = slots_[static_cast<std::size_t>(thread)];
    return {s.local, s.remote};
  }

  AccessCounts total() const {
    AccessCounts out;
    for (const auto& s : slots_) {
      out.local += s.local;
      out.remote += s.remote;
    }
    return out;
  }

  void reset() {
    for (auto& s : slots_) {
      s.local = 0;
      s.remote = 0;
    }
  }

 private:
  struct alignas(kCacheLine) Slot {
    std::uint64_t local = 0;
    std::uint64_t remote = 0;
  };
  std::vector<Slot> slots_;
};

/// Global switch for remote-access latency emulation (benches only; tests
/// and the library default leave it off).
struct RemotePenalty {
  /// Extra nanoseconds charged per remote row access. 0 disables.
  static std::atomic<std::uint32_t>& ns();
  /// Busy-wait for the configured penalty (no-op when disabled).
  static void charge();
};

}  // namespace knor::numa
