// NUMA topology abstraction.
//
// The paper binds threads to NUMA nodes, partitions the dataset across node
// memory banks, and allocates each partition on its local bank (Section 5.2,
// Figure 1). This layer provides the topology those policies need.
//
// Substitution note (see DESIGN.md §1): the reproduction container exposes a
// single NUMA node, so the topology can be *simulated*: `Topology::simulated
// (nodes, cpus)` — or the KNOR_NUMA_NODES environment variable — fabricates
// an N-node topology by striping the real CPUs across virtual nodes. All
// placement decisions (node-of-row, node-of-thread, local-vs-remote
// accounting) behave exactly as on real hardware; only physical latency
// asymmetry is absent (the cost model in numa/cost_model.hpp emulates it for
// the Figure 4/5 benches).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace knor::numa {

struct NodeInfo {
  int id = 0;
  std::vector<int> cpus;  ///< Logical CPU ids with affinity to this node.
};

class Topology {
 public:
  /// Detect the machine topology from /sys/devices/system/node. Honors the
  /// KNOR_NUMA_NODES environment variable: when set to N > detected nodes,
  /// returns simulated(N).
  static Topology detect();

  /// Fabricate an `nodes`-node topology striping `total_cpus` logical CPUs
  /// (defaults to hardware_concurrency) round-robin across the nodes.
  static Topology simulated(int nodes, int total_cpus = 0);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_cpus() const { return total_cpus_; }
  const NodeInfo& node(int id) const { return nodes_.at(id); }
  const std::vector<NodeInfo>& nodes() const { return nodes_; }

  /// Node a given logical CPU belongs to; -1 if unknown.
  int node_of_cpu(int cpu) const;

  /// True when this topology was fabricated rather than detected.
  bool is_simulated() const { return simulated_; }

  std::string describe() const;

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<int> cpu_to_node_;
  int total_cpus_ = 0;
  bool simulated_ = false;

  void build_cpu_map();
};

}  // namespace knor::numa
