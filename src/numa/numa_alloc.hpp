// NUMA-node-targeted allocation.
//
// On real multi-node Linux we bind freshly mapped pages to the target node
// with the mbind(2) syscall (invoked directly — no libnuma dependency). On a
// single-node or simulated topology the allocation is a plain aligned mmap
// tagged with the virtual node id; placement bookkeeping (which node "owns"
// the buffer) still drives thread/data affinity decisions and the local vs
// remote access accounting used by the Figure 4 bench.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "common/types.hpp"

namespace knor::numa {

/// True when the kernel exposes more than one physical NUMA node.
bool machine_has_multiple_nodes();

/// Allocate `bytes` of page-aligned, zeroed memory preferentially placed on
/// `node` (physical binding only when the machine really has that node).
/// Returns nullptr on failure.
void* alloc_on_node(std::size_t bytes, int node);

/// Release memory from alloc_on_node.
void free_on_node(void* ptr, std::size_t bytes);

/// Typed owning buffer placed on one NUMA node.
template <typename T>
class NodeBuffer {
 public:
  NodeBuffer() = default;
  NodeBuffer(std::size_t count, int node)
      : count_(count), node_(node) {
    if (count_ > 0) {
      ptr_ = static_cast<T*>(alloc_on_node(count_ * sizeof(T), node));
      if (ptr_ == nullptr) throw std::bad_alloc{};
    }
  }
  ~NodeBuffer() { reset(); }

  NodeBuffer(const NodeBuffer&) = delete;
  NodeBuffer& operator=(const NodeBuffer&) = delete;
  NodeBuffer(NodeBuffer&& o) noexcept
      : ptr_(std::exchange(o.ptr_, nullptr)),
        count_(std::exchange(o.count_, 0)),
        node_(o.node_) {}
  NodeBuffer& operator=(NodeBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      ptr_ = std::exchange(o.ptr_, nullptr);
      count_ = std::exchange(o.count_, 0);
      node_ = o.node_;
    }
    return *this;
  }

  T* data() noexcept { return ptr_; }
  const T* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return count_; }
  int node() const noexcept { return node_; }
  T& operator[](std::size_t i) noexcept { return ptr_[i]; }
  const T& operator[](std::size_t i) const noexcept { return ptr_[i]; }

  void reset() noexcept {
    if (ptr_ != nullptr) free_on_node(ptr_, count_ * sizeof(T));
    ptr_ = nullptr;
    count_ = 0;
  }

 private:
  T* ptr_ = nullptr;
  std::size_t count_ = 0;
  int node_ = 0;
};

}  // namespace knor::numa
