#include "numa/numa_alloc.hpp"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>

#include "common/logger.hpp"
#include "numa/topology.hpp"

namespace knor::numa {
namespace {

#ifndef MPOL_BIND
constexpr int MPOL_BIND = 2;
#endif

int physical_nodes() {
  // Count real sysfs nodes once; Topology::detect() may be simulated, so we
  // re-probe raw sysfs here.
  static const int nodes = [] {
    int count = 0;
    for (;; ++count) {
      const std::string p =
          "/sys/devices/system/node/node" + std::to_string(count);
      if (access(p.c_str(), F_OK) != 0) break;
    }
    return count == 0 ? 1 : count;
  }();
  return nodes;
}

long sys_mbind(void* addr, unsigned long len, int mode,
               const unsigned long* nodemask, unsigned long maxnode,
               unsigned flags) {
  return syscall(SYS_mbind, addr, len, mode, nodemask, maxnode, flags);
}

}  // namespace

bool machine_has_multiple_nodes() { return physical_nodes() > 1; }

void* alloc_on_node(std::size_t bytes, int node) {
  if (bytes == 0) return nullptr;
  const long page = sysconf(_SC_PAGESIZE);
  const std::size_t aligned =
      (bytes + static_cast<std::size_t>(page) - 1) /
      static_cast<std::size_t>(page) * static_cast<std::size_t>(page);
  void* ptr = mmap(nullptr, aligned, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (ptr == MAP_FAILED) return nullptr;

  if (node >= 0 && node < physical_nodes() && physical_nodes() > 1) {
    unsigned long nodemask = 1UL << node;
    if (sys_mbind(ptr, aligned, MPOL_BIND, &nodemask,
                  sizeof(nodemask) * 8, 0) != 0) {
      KNOR_LOG_DEBUG("mbind to node ", node, " failed: ",
                     std::strerror(errno), " (continuing unbound)");
    }
  }
  // First-touch the pages so placement happens now, on this thread.
  std::memset(ptr, 0, aligned);
  return ptr;
}

void free_on_node(void* ptr, std::size_t bytes) {
  if (ptr == nullptr) return;
  const long page = sysconf(_SC_PAGESIZE);
  const std::size_t aligned =
      (bytes + static_cast<std::size_t>(page) - 1) /
      static_cast<std::size_t>(page) * static_cast<std::size_t>(page);
  munmap(ptr, aligned);
}

}  // namespace knor::numa
