#include "numa/topology.hpp"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/logger.hpp"
#include "common/strict_parse.hpp"

namespace knor::numa {
namespace {

// Parse a Linux cpulist string like "0-3,8,10-11" into CPU ids. Malformed
// tokens are skipped (sysfs is effectively trusted; atoi used to fold them
// into a bogus cpu 0, which then landed in the cpu->node map).
std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::stringstream ss(s);
  std::string tok;
  const auto parse_cpu = [](const std::string& t, int* out) {
    std::uint64_t v = 0;
    if (!parse_u64(t, &v) || v > (1u << 20)) return false;
    *out = static_cast<int>(v);
    return true;
  };
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    const auto dash = tok.find('-');
    int lo = 0, hi = 0;
    if (dash == std::string::npos) {
      if (parse_cpu(tok, &lo)) cpus.push_back(lo);
    } else if (parse_cpu(tok.substr(0, dash), &lo) &&
               parse_cpu(tok.substr(dash + 1), &hi)) {
      for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    }
  }
  return cpus;
}

std::vector<NodeInfo> detect_sysfs() {
  std::vector<NodeInfo> nodes;
  namespace fs = std::filesystem;
  const fs::path base{"/sys/devices/system/node"};
  std::error_code ec;
  if (!fs::exists(base, ec)) return nodes;
  for (int id = 0;; ++id) {
    const fs::path dir = base / ("node" + std::to_string(id));
    if (!fs::exists(dir, ec)) break;
    std::ifstream in(dir / "cpulist");
    if (!in) break;
    std::string list;
    std::getline(in, list);
    NodeInfo node;
    node.id = id;
    node.cpus = parse_cpulist(list);
    nodes.push_back(std::move(node));
  }
  return nodes;
}

int hardware_cpus() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace

void Topology::build_cpu_map() {
  total_cpus_ = 0;
  int max_cpu = -1;
  for (const auto& n : nodes_) {
    total_cpus_ += static_cast<int>(n.cpus.size());
    for (int c : n.cpus) max_cpu = std::max(max_cpu, c);
  }
  cpu_to_node_.assign(static_cast<std::size_t>(max_cpu + 1), -1);
  for (const auto& n : nodes_)
    for (int c : n.cpus) cpu_to_node_[static_cast<std::size_t>(c)] = n.id;
}

Topology Topology::detect() {
  Topology topo;
  topo.nodes_ = detect_sysfs();
  if (topo.nodes_.empty()) {
    // No sysfs (or non-Linux): one node owning every CPU.
    NodeInfo n;
    n.id = 0;
    for (int c = 0; c < hardware_cpus(); ++c) n.cpus.push_back(c);
    topo.nodes_.push_back(std::move(n));
  }
  topo.build_cpu_map();

  if (const char* env = std::getenv("KNOR_NUMA_NODES")) {
    // Same rejection discipline as KNOR_SIMD: a typo'd value must fail
    // loudly, not silently parse as 0 and disable the simulation.
    std::uint64_t parsed = 0;
    if (!parse_u64(env, &parsed) || parsed == 0 || parsed > (1u << 16))
      throw std::invalid_argument(
          std::string("KNOR_NUMA_NODES must be a positive integer, got '") +
          env + "'");
    const int want = static_cast<int>(parsed);
    if (want > topo.num_nodes()) {
      KNOR_LOG_INFO("KNOR_NUMA_NODES=", want, ": simulating ", want,
                    "-node topology over ", topo.num_cpus(), " cpus");
      return simulated(want, topo.num_cpus());
    }
  }
  return topo;
}

Topology Topology::simulated(int nodes, int total_cpus) {
  if (nodes < 1) nodes = 1;
  if (total_cpus <= 0) total_cpus = hardware_cpus();
  // A simulated node must not be empty: fabricate at least one virtual CPU
  // slot per node (threads on the same physical CPU just time-slice).
  if (total_cpus < nodes) total_cpus = nodes;
  Topology topo;
  topo.simulated_ = true;
  topo.nodes_.resize(static_cast<std::size_t>(nodes));
  for (int id = 0; id < nodes; ++id) topo.nodes_[id].id = id;
  for (int c = 0; c < total_cpus; ++c)
    topo.nodes_[static_cast<std::size_t>(c % nodes)].cpus.push_back(c);
  topo.build_cpu_map();
  return topo;
}

int Topology::node_of_cpu(int cpu) const {
  if (cpu < 0 || static_cast<std::size_t>(cpu) >= cpu_to_node_.size()) return -1;
  return cpu_to_node_[static_cast<std::size_t>(cpu)];
}

std::string Topology::describe() const {
  std::ostringstream oss;
  oss << (simulated_ ? "simulated" : "detected") << " topology: "
      << num_nodes() << " node(s), " << num_cpus() << " cpu(s)";
  for (const auto& n : nodes_) {
    oss << "\n  node" << n.id << ": cpus[";
    for (std::size_t i = 0; i < n.cpus.size(); ++i)
      oss << (i ? "," : "") << n.cpus[i];
    oss << "]";
  }
  return oss.str();
}

}  // namespace knor::numa
