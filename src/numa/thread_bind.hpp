// Thread -> NUMA node binding.
//
// The paper binds worker threads to NUMA *nodes* rather than individual
// cores ("CPU thread-binding may cause performance degradation if the number
// of worker threads exceeds the number of physical cores", §5.2): a bound
// thread may run on any CPU of its node, leaving the OS scheduler room
// within the node.
#pragma once

#include "numa/topology.hpp"

namespace knor::numa {

/// Restrict the calling thread to the CPUs of `node` in `topo`.
/// Returns true on success. On a simulated topology whose virtual CPUs
/// exceed the physical ones this becomes a no-op success: binding is
/// logical only (the bookkeeping node id is what placement policies use).
bool bind_current_thread_to_node(const Topology& topo, int node);

/// Clear any affinity restriction for the calling thread.
void unbind_current_thread(const Topology& topo);

}  // namespace knor::numa
