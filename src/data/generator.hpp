// Synthetic dataset generators (Table 2 substitutes, DESIGN.md §1).
//
// * natural_clusters — Gaussian mixture with power-law component weights and
//   per-cluster anisotropic scales. Proxy for the Friendster top-k
//   eigenvector matrices: data with strongly rooted clusters where most
//   points settle early, which is what makes MTI pruning and the knors row
//   cache effective in the paper.
// * uniform_random — multivariate uniform in [0,1)^d. Proxy for the
//   RM856M/RM1B datasets; the paper's worst case for pruning/convergence.
// * univariate_random — d-dim rows where every dimension is an independent
//   draw from one 1-D distribution. Proxy for RU2B.
//
// Generation is deterministic in (spec, seed) and parallel-safe: row r is
// always produced from stream r, so any thread layout yields identical data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/dense_matrix.hpp"
#include "common/prng.hpp"
#include "common/types.hpp"

namespace knor::data {

enum class Distribution {
  kNaturalClusters,
  kUniformRandom,
  kUnivariateRandom,
};

const char* to_string(Distribution d);

struct GeneratorSpec {
  Distribution dist = Distribution::kNaturalClusters;
  index_t n = 0;
  index_t d = 0;
  std::uint64_t seed = 42;
  // Natural-cluster parameters:
  int true_clusters = 16;       ///< mixture components
  double separation = 8.0;      ///< centre spacing in units of cluster sigma
  double power_law_alpha = 1.5; ///< component-weight skew (1 = near-uniform)
  /// Probability that a row's component is determined by its *position*
  /// (contiguous component bands, like crawl-ordered or sorted real data)
  /// rather than drawn independently. 0 = fully shuffled rows; values near
  /// 1 reproduce the partition-level pruning skew that motivates the
  /// paper's NUMA-aware task scheduler (Figure 5).
  double locality = 0.0;

  std::string describe() const;
  /// Matrix size in bytes (what Table 2's "Size" column reports).
  std::size_t bytes() const {
    return static_cast<std::size_t>(n) * d * sizeof(value_t);
  }
};

/// Generate the full matrix in memory.
DenseMatrix generate(const GeneratorSpec& spec);

/// Generate only rows [begin, end) into `out` (out must be (end-begin) x d).
/// Used by NUMA-partitioned loading and by the SEM file writer to stream
/// datasets larger than memory.
void generate_rows(const GeneratorSpec& spec, index_t begin, index_t end,
                   MutMatrixView out);

/// Ground-truth component centre c (size d) for natural-cluster specs.
/// Useful in tests that verify recovered centroids.
std::vector<value_t> true_centre(const GeneratorSpec& spec, int component);

/// Ground-truth component of row r (natural clusters only).
int true_component_of_row(const GeneratorSpec& spec, index_t r);

}  // namespace knor::data
