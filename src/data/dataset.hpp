// NUMA-partitioned in-memory dataset (paper Figure 1).
//
// The n x d matrix is split into T contiguous row blocks; block t is
// allocated on (and first-touched from) thread t's NUMA node. Threads
// compute on their own block with purely node-local reads; row(r) supports
// cross-block access for work stealing, and node_of_row() feeds the
// local/remote accounting in the Figure 4/5 benches.
//
// The NUMA-oblivious baseline instead keeps one contiguous allocation
// placed wherever the allocating thread's first-touch put it, which is
// exactly the malloc behaviour the paper blames (§8.4).
#pragma once

#include <memory>
#include <vector>

#include "common/dense_matrix.hpp"
#include "data/generator.hpp"
#include "numa/numa_alloc.hpp"
#include "numa/partitioner.hpp"
#include "sched/scheduler.hpp"

namespace knor::data {

class NumaDataset {
 public:
  /// Partition-copy an existing matrix across nodes using `sched`'s workers
  /// (each worker copies - and therefore first-touches - its own block).
  NumaDataset(ConstMatrixView src, const numa::Partitioner& parts,
              sched::Scheduler& sched);

  /// Generate the dataset directly into node-local blocks, in parallel.
  NumaDataset(const GeneratorSpec& spec, const numa::Partitioner& parts,
              sched::Scheduler& sched);

  index_t n() const { return parts_.n(); }
  index_t d() const { return d_; }
  int threads() const { return parts_.threads(); }

  /// Row r's data (may live on a remote node; O(1)).
  const value_t* row(index_t r) const {
    const int t = parts_.thread_of_row(r);
    const auto& b = blocks_[static_cast<std::size_t>(t)];
    return b.data.data() +
           static_cast<std::size_t>(r - b.range.begin) * d_;
  }

  /// Contiguous view of thread t's block.
  ConstMatrixView thread_view(int t) const {
    const auto& b = blocks_[static_cast<std::size_t>(t)];
    return {b.data.data(), b.range.size(), d_};
  }

  numa::RowRange thread_rows(int t) const { return parts_.thread_rows(t); }
  int node_of_row(index_t r) const { return parts_.node_of_row(r); }
  const numa::Partitioner& partitioner() const { return parts_; }

  /// Total bytes of row data (for memory accounting).
  std::size_t bytes() const {
    return static_cast<std::size_t>(n()) * d_ * sizeof(value_t);
  }

 private:
  struct Block {
    numa::RowRange range;
    numa::NodeBuffer<value_t> data;
  };

  void allocate_blocks(sched::Scheduler& sched);

  numa::Partitioner parts_;
  index_t d_;
  std::vector<Block> blocks_;
};

}  // namespace knor::data
