// Binary matrix file format (.kmat) shared by the in-memory loader and the
// SEM page file.
//
// Layout: 64-byte header { magic "KNORMAT1", u64 n, u64 d, u64 elem_size,
// u64 reserved[4] } followed by n*d row-major value_t elements. Rows start
// at byte offset kHeaderBytes + r*d*elem_size, which is what sem/page_file
// relies on to compute row -> page mappings without any in-memory index
// (the paper's page_row optimization, §6.1).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/dense_matrix.hpp"
#include "common/types.hpp"
#include "data/generator.hpp"

namespace knor::data {

inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr char kMagic[8] = {'K', 'N', 'O', 'R', 'M', 'A', 'T', '1'};

struct MatrixHeader {
  index_t n = 0;
  index_t d = 0;
  std::size_t elem_size = sizeof(value_t);
};

/// Write `m` to `path`. Throws std::runtime_error on I/O failure.
void write_matrix(const std::string& path, const DenseMatrix& m);

/// Stream a generated dataset to `path` without materializing it in memory
/// (chunk_rows rows at a time). Enables SEM experiments on datasets larger
/// than RAM.
void write_generated(const std::string& path, const GeneratorSpec& spec,
                     index_t chunk_rows = 1 << 16);

/// Read and validate the header only.
MatrixHeader read_header(const std::string& path);

/// Read the whole matrix into memory. Throws on malformed files.
DenseMatrix read_matrix(const std::string& path);

/// Read rows [begin, end) into `out` ((end-begin) x d).
/// Opens and validates the file per call; batched readers (the streaming
/// engine, the assign server) should hold a RowReader instead.
void read_rows(const std::string& path, index_t begin, index_t end,
               MutMatrixView out);

/// Persistent-handle row reader: the header is parsed once at open and the
/// file stays open across read() calls — no per-batch open/validate/close
/// in streaming loops. Not thread-safe (one reader per thread).
class RowReader {
 public:
  /// Throws std::runtime_error on malformed files.
  explicit RowReader(const std::string& path);
  ~RowReader();

  RowReader(const RowReader&) = delete;
  RowReader& operator=(const RowReader&) = delete;

  index_t n() const { return header_.n; }
  index_t d() const { return header_.d; }

  /// Read rows [begin, end) into `out` ((end-begin) x d).
  void read(index_t begin, index_t end, MutMatrixView out);

 private:
  std::string path_;
  MatrixHeader header_;
  std::FILE* file_ = nullptr;
};

}  // namespace knor::data
