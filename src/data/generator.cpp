#include "data/generator.hpp"

#include <cmath>
#include <sstream>
#include <vector>

namespace knor::data {
namespace {

// Deterministic per-component centre: centres are placed on a seeded random
// lattice scaled by `separation`, so they are well separated for
// separation >> 1 and reproducible from (seed, component).
void component_centre(const GeneratorSpec& spec, int component,
                      value_t* out) {
  Prng rng(spec.seed ^ 0xc3a5c85c97cb3127ULL,
           static_cast<std::uint64_t>(component));
  for (index_t j = 0; j < spec.d; ++j)
    out[j] = spec.separation * (2.0 * rng.next_double() - 1.0) *
             std::sqrt(static_cast<double>(spec.true_clusters));
}

// Anisotropic per-component, per-dimension scale in [0.5, 1.5] — mimics the
// unequal variance directions of eigenvector embeddings.
void component_scales(const GeneratorSpec& spec, int component, value_t* out) {
  Prng rng(spec.seed ^ 0x9ae16a3b2f90404fULL,
           static_cast<std::uint64_t>(component));
  for (index_t j = 0; j < spec.d; ++j) out[j] = 0.5 + rng.next_double();
}

// Power-law component weights: w_i ~ (i+1)^-alpha, normalized into a CDF.
std::vector<double> component_cdf(const GeneratorSpec& spec) {
  std::vector<double> cdf(static_cast<std::size_t>(spec.true_clusters));
  double total = 0.0;
  for (int i = 0; i < spec.true_clusters; ++i) {
    total += std::pow(static_cast<double>(i + 1), -spec.power_law_alpha);
    cdf[static_cast<std::size_t>(i)] = total;
  }
  for (auto& v : cdf) v /= total;
  return cdf;
}

int pick_component(const std::vector<double>& cdf, double u) {
  // Linear scan is fine: true_clusters is small (<=256 in practice).
  for (std::size_t i = 0; i < cdf.size(); ++i)
    if (u < cdf[i]) return static_cast<int>(i);
  return static_cast<int>(cdf.size()) - 1;
}

// Component of row r: with probability `locality`, determined by the row's
// position (inverse-CDF of a linear ramp -> contiguous bands whose lengths
// follow the power-law weights); otherwise drawn independently. Consumes
// exactly two uniforms from `rng` so the downstream Gaussian draws are
// identical regardless of which branch fires.
int row_component(const GeneratorSpec& spec, const std::vector<double>& cdf,
                  index_t r, Prng& rng) {
  const double gate = rng.next_double();
  const double u = rng.next_double();
  if (gate < spec.locality) {
    const double ramp =
        (static_cast<double>(r) + 0.5) / static_cast<double>(spec.n);
    return pick_component(cdf, ramp);
  }
  return pick_component(cdf, u);
}

}  // namespace

const char* to_string(Distribution d) {
  switch (d) {
    case Distribution::kNaturalClusters: return "natural-clusters";
    case Distribution::kUniformRandom: return "uniform-random";
    case Distribution::kUnivariateRandom: return "univariate-random";
  }
  return "?";
}

std::string GeneratorSpec::describe() const {
  std::ostringstream oss;
  oss << to_string(dist) << " n=" << n << " d=" << d << " seed=" << seed;
  if (dist == Distribution::kNaturalClusters) {
    oss << " components=" << true_clusters << " sep=" << separation
        << " alpha=" << power_law_alpha;
    if (locality > 0) oss << " locality=" << locality;
  }
  return oss.str();
}

int true_component_of_row(const GeneratorSpec& spec, index_t r) {
  static thread_local std::vector<double> cdf;
  static thread_local std::uint64_t cached_key = 0;
  // component_cdf is pure in (seed, clusters, alpha); rebuild only when the
  // parameters change. Tests call this per-row, so the cache matters.
  const std::uint64_t key =
      spec.seed * 1000003ULL + static_cast<std::uint64_t>(spec.true_clusters) +
      static_cast<std::uint64_t>(spec.power_law_alpha * 4096.0) +
      static_cast<std::uint64_t>(spec.locality * 65536.0) * 131ULL;
  if (cdf.empty() || cached_key != key) {
    cdf = component_cdf(spec);
    cached_key = key;
  }
  Prng rng(spec.seed, r);
  return row_component(spec, cdf, r, rng);
}

std::vector<value_t> true_centre(const GeneratorSpec& spec, int component) {
  std::vector<value_t> c(static_cast<std::size_t>(spec.d));
  component_centre(spec, component, c.data());
  return c;
}

void generate_rows(const GeneratorSpec& spec, index_t begin, index_t end,
                   MutMatrixView out) {
  if (end < begin || out.rows() != end - begin || out.cols() != spec.d)
    throw std::invalid_argument("generate_rows: output shape mismatch");

  switch (spec.dist) {
    case Distribution::kUniformRandom: {
      for (index_t r = begin; r < end; ++r) {
        Prng rng(spec.seed, r);
        value_t* row = out.row(r - begin);
        for (index_t j = 0; j < spec.d; ++j) row[j] = rng.next_double();
      }
      return;
    }
    case Distribution::kUnivariateRandom: {
      // All dimensions drawn from one univariate standard normal.
      for (index_t r = begin; r < end; ++r) {
        Prng rng(spec.seed, r);
        value_t* row = out.row(r - begin);
        for (index_t j = 0; j < spec.d; ++j) row[j] = rng.next_gaussian();
      }
      return;
    }
    case Distribution::kNaturalClusters: {
      const auto cdf = component_cdf(spec);
      std::vector<value_t> centre(static_cast<std::size_t>(spec.d));
      std::vector<value_t> scale(static_cast<std::size_t>(spec.d));
      int cached_component = -1;
      for (index_t r = begin; r < end; ++r) {
        Prng rng(spec.seed, r);
        const int comp = row_component(spec, cdf, r, rng);
        if (comp != cached_component) {
          component_centre(spec, comp, centre.data());
          component_scales(spec, comp, scale.data());
          cached_component = comp;
        }
        value_t* row = out.row(r - begin);
        for (index_t j = 0; j < spec.d; ++j)
          row[j] = centre[j] + scale[j] * rng.next_gaussian();
      }
      return;
    }
  }
}

DenseMatrix generate(const GeneratorSpec& spec) {
  DenseMatrix m(spec.n, spec.d);
  generate_rows(spec, 0, spec.n, m.view());
  return m;
}

}  // namespace knor::data
