#include "data/matrix_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace knor::data {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f)
    throw std::runtime_error("matrix_io: cannot open '" + path + "' (" +
                             std::strerror(errno) + ")");
  return f;
}

void write_header(std::FILE* f, const MatrixHeader& h) {
  unsigned char buf[kHeaderBytes] = {};
  std::memcpy(buf, kMagic, sizeof(kMagic));
  std::uint64_t fields[3] = {h.n, h.d, h.elem_size};
  std::memcpy(buf + sizeof(kMagic), fields, sizeof(fields));
  if (std::fwrite(buf, 1, kHeaderBytes, f) != kHeaderBytes)
    throw std::runtime_error("matrix_io: header write failed");
}

MatrixHeader parse_header(std::FILE* f, const std::string& path) {
  unsigned char buf[kHeaderBytes];
  if (std::fread(buf, 1, kHeaderBytes, f) != kHeaderBytes)
    throw std::runtime_error("matrix_io: '" + path + "' truncated header");
  if (std::memcmp(buf, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("matrix_io: '" + path + "' bad magic");
  MatrixHeader h;
  std::uint64_t fields[3];
  std::memcpy(fields, buf + sizeof(kMagic), sizeof(fields));
  h.n = fields[0];
  h.d = fields[1];
  h.elem_size = fields[2];
  if (h.elem_size != sizeof(value_t))
    throw std::runtime_error("matrix_io: '" + path +
                             "' element size mismatch");
  if (h.d == 0) throw std::runtime_error("matrix_io: '" + path + "' d == 0");
  return h;
}

void check_body_size(std::FILE* f, const MatrixHeader& h,
                     const std::string& path) {
  if (std::fseek(f, 0, SEEK_END) != 0)
    throw std::runtime_error("matrix_io: seek failed");
  const long size = std::ftell(f);
  if (size < static_cast<long>(kHeaderBytes))
    throw std::runtime_error("matrix_io: '" + path + "' truncated body");
  // Bound the header-declared body against the bytes actually on disk
  // BEFORE any n*d allocation: the old size_t product wrapped for hostile
  // n/d fields, letting a 64-byte file declare a multi-exabyte matrix.
  constexpr std::uint64_t kMaxField = 1ull << 40;
  const unsigned __int128 body =
      h.n > kMaxField || h.d > kMaxField
          ? static_cast<unsigned __int128>(-1)
          : static_cast<unsigned __int128>(h.n) * h.d * h.elem_size;
  if (body > static_cast<std::uint64_t>(size) - kHeaderBytes)
    throw std::runtime_error("matrix_io: '" + path +
                             "' hostile size field: declared body exceeds "
                             "file size");
}

}  // namespace

void write_matrix(const std::string& path, const DenseMatrix& m) {
  FilePtr f = open_or_throw(path, "wb");
  write_header(f.get(), {m.rows(), m.cols(), sizeof(value_t)});
  const std::size_t count = m.size();
  if (count > 0 && std::fwrite(m.data(), sizeof(value_t), count, f.get()) != count)
    throw std::runtime_error("matrix_io: body write failed");
}

void write_generated(const std::string& path, const GeneratorSpec& spec,
                     index_t chunk_rows) {
  if (chunk_rows == 0) chunk_rows = 1;
  FilePtr f = open_or_throw(path, "wb");
  write_header(f.get(), {spec.n, spec.d, sizeof(value_t)});
  DenseMatrix chunk(std::min(chunk_rows, spec.n), spec.d);
  for (index_t begin = 0; begin < spec.n; begin += chunk_rows) {
    const index_t end = std::min(spec.n, begin + chunk_rows);
    MutMatrixView view(chunk.data(), end - begin, spec.d);
    generate_rows(spec, begin, end, view);
    const std::size_t count = static_cast<std::size_t>(end - begin) * spec.d;
    if (std::fwrite(chunk.data(), sizeof(value_t), count, f.get()) != count)
      throw std::runtime_error("matrix_io: body write failed");
  }
}

MatrixHeader read_header(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb");
  MatrixHeader h = parse_header(f.get(), path);
  check_body_size(f.get(), h, path);
  return h;
}

DenseMatrix read_matrix(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb");
  const MatrixHeader h = parse_header(f.get(), path);
  check_body_size(f.get(), h, path);
  if (std::fseek(f.get(), static_cast<long>(kHeaderBytes), SEEK_SET) != 0)
    throw std::runtime_error("matrix_io: seek failed");
  DenseMatrix m(h.n, h.d);
  const std::size_t count = m.size();
  if (count > 0 &&
      std::fread(m.data(), sizeof(value_t), count, f.get()) != count)
    throw std::runtime_error("matrix_io: body read failed");
  return m;
}

namespace {

void read_rows_from(std::FILE* f, const MatrixHeader& h,
                    const std::string& path, index_t begin, index_t end,
                    MutMatrixView out) {
  if (end < begin || end > h.n)
    throw std::out_of_range("matrix_io: '" + path +
                            "' row range out of bounds");
  if (out.rows() != end - begin || out.cols() != h.d)
    throw std::invalid_argument("matrix_io: '" + path +
                                "' output shape mismatch");
  const auto offset = static_cast<long>(
      kHeaderBytes + static_cast<std::size_t>(begin) * h.d * sizeof(value_t));
  if (std::fseek(f, offset, SEEK_SET) != 0)
    throw std::runtime_error("matrix_io: '" + path + "' seek failed");
  const std::size_t count = static_cast<std::size_t>(end - begin) * h.d;
  if (count > 0 &&
      std::fread(out.data(), sizeof(value_t), count, f) != count)
    throw std::runtime_error("matrix_io: '" + path + "' row read failed");
}

}  // namespace

void read_rows(const std::string& path, index_t begin, index_t end,
               MutMatrixView out) {
  FilePtr f = open_or_throw(path, "rb");
  const MatrixHeader h = parse_header(f.get(), path);
  check_body_size(f.get(), h, path);
  read_rows_from(f.get(), h, path, begin, end, out);
}

RowReader::RowReader(const std::string& path) : path_(path) {
  FilePtr f = open_or_throw(path, "rb");
  header_ = parse_header(f.get(), path);
  check_body_size(f.get(), header_, path);
  file_ = f.release();
}

RowReader::~RowReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void RowReader::read(index_t begin, index_t end, MutMatrixView out) {
  read_rows_from(file_, header_, path_, begin, end, out);
}

}  // namespace knor::data
