#include "data/dataset.hpp"

#include <cassert>
#include <cstring>

#include "common/aligned_buffer.hpp"

namespace knor::data {

void NumaDataset::allocate_blocks(sched::Scheduler& sched) {
  blocks_.resize(static_cast<std::size_t>(parts_.threads()));
  // Allocate from within each bound worker so first-touch lands on the
  // worker's node even when mbind is unavailable.
  sched.run([&](int t) {
    auto& block = blocks_[static_cast<std::size_t>(t)];
    block.range = parts_.thread_rows(t);
    block.data = numa::NodeBuffer<value_t>(
        static_cast<std::size_t>(block.range.size()) * d_,
        parts_.node_of_thread(t));
    // NodeBuffer is page-backed (mmap), so each block's base meets the
    // SIMD layer's 64-byte requirement; rows inside a block are reached
    // with unaligned loads (odd d), see common/dense_matrix.hpp.
    assert(block.range.empty() || is_cacheline_aligned(block.data.data()));
  });
}

NumaDataset::NumaDataset(ConstMatrixView src, const numa::Partitioner& parts,
                         sched::Scheduler& sched)
    : parts_(parts), d_(src.cols()) {
  allocate_blocks(sched);
  sched.run([&](int t) {
    auto& block = blocks_[static_cast<std::size_t>(t)];
    if (block.range.empty()) return;
    std::memcpy(block.data.data(), src.row(block.range.begin),
                static_cast<std::size_t>(block.range.size()) * d_ *
                    sizeof(value_t));
  });
}

NumaDataset::NumaDataset(const GeneratorSpec& spec,
                         const numa::Partitioner& parts,
                         sched::Scheduler& sched)
    : parts_(parts), d_(spec.d) {
  allocate_blocks(sched);
  sched.run([&](int t) {
    auto& block = blocks_[static_cast<std::size_t>(t)];
    if (block.range.empty()) return;
    MutMatrixView view(block.data.data(), block.range.size(), d_);
    generate_rows(spec, block.range.begin, block.range.end, view);
  });
}

}  // namespace knor::data
