// Streaming k-means — clustering an unbounded source (DESIGN.md §9).
//
// The trained engines (knori/knors/knord) need the whole dataset up front;
// StreamEngine instead ingests batches as they arrive and maintains the
// centroids with decayed mini-batch updates:
//
//   per batch b (m_c rows and coordinate sum s_c assigned to cluster c):
//     W_c      <- decay * W_c + m_c
//     centre_c <- (decay * W_c_old * centre_c + s_c) / W_c    (m_c > 0)
//
// decay = 1 makes centre_c the exact running mean of every row ever
// assigned to c — the same estimator mini-batch k-means (core/minibatch)
// converges to on the same batch order (tests/stream_test.cpp pins this).
// decay < 1 exponentially forgets old batches, which is what lets the
// centroids track a drifting source.
//
// Determinism contract (extends DESIGN.md §7 to streams): each batch is
// assigned against frozen centroids on the work-stealing scheduler with
// per-CHUNK accumulators folded by the fixed tree, and the decayed update
// is applied sequentially in cluster order. For a fixed batch replay
// (same rows, same batch boundaries) the centroids, weights and counts
// are therefore BITWISE identical across thread counts, scheduling
// policies and steal schedules — only timings vary.
//
// Snapshots reuse sem/checkpoint: a stream snapshot is {batches ingested,
// centroids, per-cluster weights + row counts} with no per-point state
// (the stream is unbounded). save/restore round-trips bitwise, so a
// restored engine replaying the remaining batches matches an uninterrupted
// run exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/dense_matrix.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "core/kmeans_types.hpp"
#include "sem/checkpoint.hpp"

namespace knor::stream {

struct StreamOptions {
  /// Per-batch weight decay in (0, 1]. 1 = running mean over the whole
  /// stream; smaller forgets old batches exponentially (the effective
  /// window is ~batch_rows / (1 - decay) rows).
  double decay = 1.0;
  /// Rows per ingested batch when streaming from a file; direct ingest()
  /// callers choose their own batch sizes.
  index_t batch_rows = 4096;
  /// Auto-snapshot to snapshot_path every N ingested batches (0 = off).
  int snapshot_every = 0;
  std::string snapshot_path;
};

/// Per-engine instrumentation. The algorithmic fields (batches, rows,
/// last_batch_sse) are deterministic for a fixed replay; batch_times is
/// machine-dependent.
struct StreamStats {
  std::uint64_t batches = 0;    ///< batches applied to the centroids
  std::uint64_t rows = 0;       ///< rows ingested (incl. the seed buffer)
  std::uint64_t snapshots = 0;  ///< auto-snapshots written
  /// Sum of squared distances of the last batch's rows to the centroids
  /// they were assigned against (pre-update) — the streaming loss proxy.
  double last_batch_sse = 0.0;
  IterStats batch_times;
};

class StreamEngine {
 public:
  /// `opts` supplies k, seed/init, threads, NUMA/scheduler and SIMD
  /// selection (max_iters/tolerance/prune are ignored — a stream has no
  /// convergence). With Init::kProvided the engine is ready immediately;
  /// otherwise the first k ingested rows are buffered and the configured
  /// init runs on that buffer before it is applied as the first batch.
  StreamEngine(const Options& opts, const StreamOptions& sopts);
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Apply one batch. Empty batches are ignored; the column count must
  /// match across all batches (fixed by the first).
  void ingest(ConstMatrixView batch);

  /// Stream a .kmat file through ingest() in sopts.batch_rows chunks.
  /// Returns the number of rows ingested. Bounded memory: one batch.
  index_t ingest_file(const std::string& path);

  /// False until enough rows arrived to seed the centroids.
  bool ready() const { return !centroids_.empty(); }
  int k() const { return opts_.k; }
  index_t d() const { return d_; }
  const Options& options() const { return opts_; }

  const DenseMatrix& centroids() const { return centroids_; }
  const std::vector<value_t>& weights() const { return weights_; }
  /// Total rows ever assigned per cluster (monotonic, not decayed).
  const std::vector<std::int64_t>& counts() const { return counts_; }
  const StreamStats& stats() const { return stats_; }

  /// Current state as a sem::Checkpoint (n == 0, weights block set).
  sem::Checkpoint snapshot() const;
  void save_snapshot(const std::string& path) const;
  /// Resume from a snapshot(): bitwise-restores centroids/weights/counts.
  /// Throws std::invalid_argument on k/d mismatch or a non-stream
  /// checkpoint.
  void restore(const sem::Checkpoint& ckpt);

 private:
  struct Impl;

  void seed_from_buffer();
  void apply_batch(ConstMatrixView batch);

  Options opts_;
  StreamOptions sopts_;
  index_t d_ = 0;
  DenseMatrix centroids_;            ///< k x d (empty until ready)
  std::vector<value_t> weights_;     ///< k decayed batch weights
  std::vector<std::int64_t> counts_; ///< k total rows assigned
  DenseMatrix seed_buffer_;          ///< rows buffered before init
  index_t seed_rows_ = 0;
  StreamStats stats_;
  std::unique_ptr<Impl> impl_;  ///< scheduler + reusable accumulators
};

}  // namespace knor::stream
