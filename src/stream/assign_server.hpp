// High-throughput assignment serving over frozen centroids (DESIGN.md §9).
//
// After training (any engine) or streaming ingestion (StreamEngine), the
// serving question is "which cluster is this point in?" at the highest
// rate the hardware allows. AssignServer packs the centroids once into a
// kernels::CentroidPack and answers queries with the register-blocked
// nearest_blocked kernel on the work-stealing scheduler:
//
//   * assign()      — one in-memory batch, parallel over rows.
//   * assign_file() — an arbitrarily large on-disk .kmat query file,
//     streamed through a bounded ring of I/O buffers: a reader thread
//     prefetches batch i+1 (from data/matrix_io or a sem::PageFile) while
//     the scheduler assigns batch i. The ring is the backpressure: when
//     compute falls behind, the reader blocks on a free buffer instead of
//     buffering the file in memory; memory stays O(io_buffers *
//     batch_rows * d) no matter how large the file is.
//
// Assignments are elementwise (each row independent against frozen
// centroids), so results are bitwise-deterministic for the selected SIMD
// ISA regardless of thread count, batch size, source or buffer depth; the
// served histogram is integer-accumulated and equally deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/dense_matrix.hpp"
#include "common/types.hpp"
#include "core/kmeans_types.hpp"
#include "sem/checkpoint.hpp"

namespace knor::stream {

struct AssignOptions {
  /// Rows per streamed I/O batch (the serving granularity).
  index_t batch_rows = 1 << 14;
  /// How the reader pulls rows off disk: whole-row reads through
  /// data/matrix_io, or page-granular reads through a sem::PageFile (the
  /// SEM substrate; rows are served zero-copy out of the page extent).
  enum class Source { kMatrixIo, kPageFile };
  Source source = Source::kMatrixIo;
  /// Page size for Source::kPageFile.
  std::size_t page_size = 4096;
  /// In-flight batch buffers (>= 2 overlaps I/O with compute; the bound is
  /// what makes ingestion backpressured).
  int io_buffers = 2;
};

/// Serving statistics for one assign_file() call. `rows`, `batches` and
/// `bytes_read` are deterministic; the wait/wall fields are timings.
///
/// The consumer-side buckets partition the serve: every consumer wait is
/// charged to exactly one of `compute_wait_s` (stalled mid-stream for the
/// next batch — the I/O-bound signal) or `drain_s` (the final wait after
/// the last batch, for the reader's done announcement — NOT an I/O stall,
/// it was once misattributed to compute_wait), and `compute_s` covers the
/// assign + sink work between waits. The intervals are disjoint slices of
/// one thread's wall time, so compute_wait_s + compute_s + drain_s <=
/// wall_s always (the remainder is loop bookkeeping); tests/stream_test
/// pins the reconciliation. `io_stall_s` is on the READER thread and
/// overlaps the consumer buckets — it is a backpressure signal, not a
/// slice of wall_s.
struct AssignStats {
  std::uint64_t rows = 0;
  std::uint64_t batches = 0;
  std::uint64_t bytes_read = 0;
  double wall_s = 0;          ///< whole serve, open to last sink call
  double compute_wait_s = 0;  ///< assigner stalled waiting for data (I/O-bound)
  double compute_s = 0;       ///< assign + sink work on the consumer
  double drain_s = 0;         ///< final wait for the reader's done signal
  double io_stall_s = 0;      ///< reader blocked on a free buffer (backpressure)

  double rows_per_sec() const { return wall_s > 0 ? rows / wall_s : 0.0; }
};

class AssignServer {
 public:
  /// Freeze `centroids` (k x d) for serving. `opts` supplies threads,
  /// NUMA/scheduler policy and SIMD selection.
  AssignServer(const DenseMatrix& centroids, const Options& opts);
  /// Serve from a stream/SEM snapshot's centroids.
  AssignServer(const sem::Checkpoint& snapshot, const Options& opts);
  ~AssignServer();

  AssignServer(const AssignServer&) = delete;
  AssignServer& operator=(const AssignServer&) = delete;

  int k() const;
  index_t d() const;

  /// Assign one in-memory batch: out[i] = nearest centroid of row i
  /// (out_sq[i] = its squared distance when non-null). Parallel over rows.
  void assign(ConstMatrixView queries, cluster_t* out,
              value_t* out_sq = nullptr);

  /// Row-order delivery of a streamed file's assignments: called once per
  /// batch with the batch's first row index and `count` assignments.
  using Sink =
      std::function<void(index_t first_row, const cluster_t* assign,
                         index_t count)>;

  /// Stream-assign every row of a .kmat file. The sink may be empty
  /// (histogram-only serving). Throws on malformed files; the reader
  /// thread's errors are rethrown on the calling thread.
  AssignStats assign_file(const std::string& path, const AssignOptions& aopts,
                          const Sink& sink = {});

  /// Rows served per cluster across every assign()/assign_file() call.
  const std::vector<std::int64_t>& served_histogram() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace knor::stream
