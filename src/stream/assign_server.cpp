#include "stream/assign_server.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/aligned_buffer.hpp"
#include "common/timer.hpp"
#include "core/kernels/simd.hpp"
#include "data/matrix_io.hpp"
#include "numa/topology.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sem/page_file.hpp"
#include "sched/scheduler.hpp"

namespace knor::stream {

struct AssignServer::Impl {
  Impl(const DenseMatrix& c, const Options& o)
      : opts(o),
        centroids(c),
        topo(o.numa_nodes > 0 ? numa::Topology::simulated(o.numa_nodes)
                              : numa::Topology::detect()),
        threads(o.threads > 0 ? o.threads : topo.num_cpus()),
        sched(threads, topo, /*bind=*/o.numa_aware && o.numa_bind, o.sched),
        histogram(static_cast<std::size_t>(c.rows()), 0),
        tcounts(static_cast<std::size_t>(threads),
                std::vector<std::int64_t>(static_cast<std::size_t>(c.rows()),
                                          0)),
        ops(&kernels::ops_for(o.simd)) {
    if (centroids.empty())
      throw std::invalid_argument("assign: centroids are empty");
    pack.pack(centroids);
  }

  void assign(ConstMatrixView queries, cluster_t* out, value_t* out_sq);

  Options opts;
  DenseMatrix centroids;
  numa::Topology topo;
  int threads;
  sched::Scheduler sched;
  kernels::CentroidPack pack;
  std::vector<std::int64_t> histogram;
  std::vector<std::vector<std::int64_t>> tcounts;
  /// Resolved once at construction: the server stays on one ISA for its
  /// whole life even if another engine retargets the process-global
  /// dispatch (the per-selected-ISA determinism contract).
  const kernels::Ops* ops;
};

void AssignServer::Impl::assign(ConstMatrixView queries, cluster_t* out,
                                value_t* out_sq) {
  if (queries.cols() != centroids.cols())
    throw std::invalid_argument("assign: query d=" +
                                std::to_string(queries.cols()) +
                                " != centroid d=" +
                                std::to_string(centroids.cols()));
  const kernels::Ops& K = *ops;
  for (auto& tc : tcounts) std::fill(tc.begin(), tc.end(), 0);
  sched.parallel_for(
      queries.rows(), opts.task_size, nullptr,
      [&](int tid, const sched::Task& task) {
        auto& tc = tcounts[static_cast<std::size_t>(tid)];
        for (index_t r = task.begin; r < task.end; ++r) {
          const cluster_t best = K.nearest_blocked(
              queries.row(r), pack, out_sq != nullptr ? &out_sq[r] : nullptr);
          out[r] = best;
          ++tc[best];
        }
      });
  // Integer merge in thread order: exact, so the histogram is
  // schedule-independent.
  for (const auto& tc : tcounts)
    for (std::size_t c = 0; c < histogram.size(); ++c) histogram[c] += tc[c];
}

AssignServer::AssignServer(const DenseMatrix& centroids, const Options& opts)
    : impl_(std::make_unique<Impl>(centroids, opts)) {}

AssignServer::AssignServer(const sem::Checkpoint& snapshot,
                           const Options& opts)
    : AssignServer(snapshot.centroids, opts) {}

AssignServer::~AssignServer() = default;

int AssignServer::k() const {
  return static_cast<int>(impl_->centroids.rows());
}
index_t AssignServer::d() const { return impl_->centroids.cols(); }

void AssignServer::assign(ConstMatrixView queries, cluster_t* out,
                          value_t* out_sq) {
  impl_->assign(queries, out, out_sq);
}

const std::vector<std::int64_t>& AssignServer::served_histogram() const {
  return impl_->histogram;
}

namespace {

/// One in-flight batch: rows [first_row, first_row + view.rows()). The
/// matrix_io source fills `mat`; the page source fills `pages` and points
/// the view straight into the extent (zero-copy).
struct BatchSlot {
  DenseMatrix mat;
  AlignedBuffer<unsigned char> pages;
  ConstMatrixView view;
  index_t first_row = 0;
};

}  // namespace

AssignStats AssignServer::assign_file(const std::string& path,
                                      const AssignOptions& aopts,
                                      const Sink& sink) {
  if (aopts.batch_rows < 1)
    throw std::invalid_argument("assign: batch_rows must be >= 1");
  const auto S = static_cast<std::size_t>(std::max(2, aopts.io_buffers));
  const index_t d = impl_->centroids.cols();

  // Open the source up front on the calling thread so malformed files
  // throw here, not inside the reader; both handles then persist across
  // every batch (no per-batch open/validate).
  std::unique_ptr<sem::PageFile> pf;
  std::unique_ptr<data::RowReader> rr;
  index_t n = 0, file_d = 0;
  if (aopts.source == AssignOptions::Source::kPageFile) {
    if (aopts.page_size == 0 || aopts.page_size % sizeof(value_t) != 0)
      throw std::invalid_argument(
          "assign: page_size must be a positive multiple of the element "
          "size");
    pf = std::make_unique<sem::PageFile>(path, aopts.page_size);
    n = pf->n();
    file_d = pf->d();
  } else {
    rr = std::make_unique<data::RowReader>(path);
    n = rr->n();
    file_d = rr->d();
  }
  if (file_d != d)
    throw std::invalid_argument("assign: " + path + " has d=" +
                                std::to_string(file_d) +
                                ", centroids have d=" + std::to_string(d));
  // Clamp to the file: bounds the slot buffers (an oversized request would
  // otherwise overflow the page-extent sizing arithmetic) and keeps
  // batches/rows exact.
  const index_t batch_rows =
      std::min(aopts.batch_rows, std::max<index_t>(n, 1));

  std::vector<BatchSlot> slots(S);
  if (pf != nullptr) {
    // Worst-case pages per batch: the batch body plus one page of
    // leading/trailing slack from row/page misalignment.
    const std::size_t max_bytes =
        static_cast<std::size_t>(batch_rows) * pf->row_bytes() +
        2 * pf->page_size();
    const std::size_t max_pages =
        (max_bytes + pf->page_size() - 1) / pf->page_size();
    for (auto& slot : slots)
      slot.pages =
          AlignedBuffer<unsigned char>(max_pages * pf->page_size(),
                                       kCacheLine);
  }

  std::mutex mu;
  std::condition_variable cv_full, cv_free;
  std::size_t produced = 0, consumed = 0;
  bool reader_done = false;
  bool abort = false;
  std::exception_ptr reader_error;
  AssignStats stats;
  stats.batches = (n + batch_rows - 1) / batch_rows;

  std::thread reader([&] {
    try {
      double stalled = 0;
      for (index_t begin = 0; begin < n; begin += batch_rows) {
        const index_t end = std::min(n, begin + batch_rows);
        {
          std::unique_lock<std::mutex> lock(mu);
          const WallTimer wait;
          cv_free.wait(lock,
                       [&] { return produced - consumed < S || abort; });
          stalled += wait.elapsed();
          if (abort) break;
        }
        BatchSlot& slot = slots[produced % S];
        slot.first_row = begin;
        const index_t rows = end - begin;
        if (pf != nullptr) {
          const std::uint64_t first_page = pf->first_page_of_row(begin);
          const std::uint64_t last_page = pf->last_page_of_row(end - 1);
          pf->read_pages(first_page,
                         static_cast<std::uint32_t>(last_page - first_page +
                                                    1),
                         slot.pages.data());
          const std::size_t skew = static_cast<std::size_t>(
              pf->row_offset(begin) - first_page * pf->page_size());
          slot.view = ConstMatrixView(
              reinterpret_cast<const value_t*>(slot.pages.data() + skew),
              rows, d);
        } else {
          if (slot.mat.rows() < rows) slot.mat = DenseMatrix(rows, d);
          MutMatrixView out(slot.mat.data(), rows, d);
          rr->read(begin, end, out);
          slot.view = ConstMatrixView(slot.mat.data(), rows, d);
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          ++produced;
        }
        cv_full.notify_one();
      }
      std::lock_guard<std::mutex> lock(mu);
      reader_done = true;
      stats.io_stall_s = stalled;
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      reader_error = std::current_exception();
      reader_done = true;
    }
    cv_full.notify_one();
  });

  // Serving metrics (DESIGN.md §10; the substrate for the SLO stats of
  // ROADMAP item 1): per-batch service latency as a p50/p99-extractable
  // histogram, plus the row/batch/byte totals. Rows, batches and the
  // matrix_io byte count replay deterministically; latency and the ring
  // stall/wait splits are wall-clock.
  using obs::Det;
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& batch_us =
      reg.histogram("stream.assign.batch_us", Det::kTiming);

  const WallTimer wall;
  std::vector<cluster_t> assignments(static_cast<std::size_t>(
      std::min<index_t>(n, batch_rows)));
  try {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu);
        const WallTimer wait;
        cv_full.wait(lock, [&] { return produced > consumed || reader_done; });
        if (produced == consumed) {
          // Nothing left to consume: this wait was for the reader's done
          // (or error) announcement, not for data — charge it to the
          // drain bucket, not the I/O-bound compute_wait signal.
          stats.drain_s += wait.elapsed();
          break;
        }
        stats.compute_wait_s += wait.elapsed();
      }
      BatchSlot& slot = slots[consumed % S];
      const index_t rows = slot.view.rows();
      const WallTimer work;
      {
        obs::Span span_assign("assign");
        const std::uint64_t t0 = obs::Tracer::now_us();
        impl_->assign(slot.view, assignments.data(), nullptr);
        batch_us.record(obs::Tracer::now_us() - t0);
      }
      stats.rows += rows;
      if (sink) sink(slot.first_row, assignments.data(), rows);
      stats.compute_s += work.elapsed();
      {
        std::lock_guard<std::mutex> lock(mu);
        ++consumed;
      }
      cv_free.notify_one();
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu);
      abort = true;
    }
    cv_free.notify_one();
    reader.join();
    throw;
  }
  reader.join();
  if (reader_error) std::rethrow_exception(reader_error);

  stats.wall_s = wall.elapsed();
  stats.bytes_read =
      pf != nullptr
          ? pf->bytes_read()
          : static_cast<std::uint64_t>(stats.rows) * d * sizeof(value_t);

  reg.counter("stream.assign.rows", Det::kDeterministic).add(stats.rows);
  reg.counter("stream.assign.batches", Det::kDeterministic)
      .add(stats.batches);
  // Page-sourced reads include row/page misalignment slack — still a pure
  // function of (file, page_size, batch_rows), so deterministic.
  reg.counter("stream.assign.bytes_read", Det::kDeterministic)
      .add(stats.bytes_read);
  reg.counter("stream.assign.compute_wait_us", Det::kTiming)
      .add(static_cast<std::uint64_t>(stats.compute_wait_s * 1e6));
  reg.counter("stream.assign.compute_us", Det::kTiming)
      .add(static_cast<std::uint64_t>(stats.compute_s * 1e6));
  reg.counter("stream.assign.drain_us", Det::kTiming)
      .add(static_cast<std::uint64_t>(stats.drain_s * 1e6));
  reg.counter("stream.assign.io_stall_us", Det::kTiming)
      .add(static_cast<std::uint64_t>(stats.io_stall_s * 1e6));
  return stats;
}

}  // namespace knor::stream
