#include "stream/stream_engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/chunk_accum.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/local_centroids.hpp"
#include "data/matrix_io.hpp"
#include "numa/topology.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sched/scheduler.hpp"

namespace knor::stream {

/// Scheduler + reusable per-batch accumulators. The chunk grid is a pure
/// function of (batch rows, task_size), so the accumulator block is rebuilt
/// only when a batch's chunk count changes (steady-state streams reuse it).
struct StreamEngine::Impl {
  Impl(const Options& opts)
      : topo(opts.numa_nodes > 0 ? numa::Topology::simulated(opts.numa_nodes)
                                 : numa::Topology::detect()),
        threads(opts.threads > 0 ? opts.threads : topo.num_cpus()),
        sched(threads, topo, /*bind=*/opts.numa_aware && opts.numa_bind,
              opts.sched),
        ops(&kernels::ops_for(opts.simd)) {}

  numa::Topology topo;
  int threads;
  sched::Scheduler sched;
  /// Resolved once at construction: the engine stays on one ISA for its
  /// whole life even if another engine retargets the process-global
  /// dispatch (the per-selected-ISA determinism contract).
  const kernels::Ops* ops;
  kernels::CentroidPack pack;
  std::unique_ptr<ChunkAccum<LocalCentroids>> accum;
  std::vector<double> chunk_sse;
};

StreamEngine::StreamEngine(const Options& opts, const StreamOptions& sopts)
    : opts_(opts), sopts_(sopts) {
  if (opts_.k < 1) throw std::invalid_argument("stream: k must be >= 1");
  if (!(sopts_.decay > 0.0) || sopts_.decay > 1.0)
    throw std::invalid_argument("stream: decay must be in (0, 1]");
  if (sopts_.batch_rows < 1)
    throw std::invalid_argument("stream: batch_rows must be >= 1");
  if (sopts_.snapshot_every > 0 && sopts_.snapshot_path.empty())
    throw std::invalid_argument(
        "stream: snapshot_every requires a snapshot path");
  weights_.assign(static_cast<std::size_t>(opts_.k), 0.0);
  counts_.assign(static_cast<std::size_t>(opts_.k), 0);
  impl_ = std::make_unique<Impl>(opts_);
  if (opts_.init == Init::kProvided) {
    if (opts_.initial_centroids.rows() != static_cast<index_t>(opts_.k) ||
        opts_.initial_centroids.cols() == 0)
      throw std::invalid_argument("stream: provided centroids must be k x d");
    centroids_ = opts_.initial_centroids;
    d_ = centroids_.cols();
  }
}

StreamEngine::~StreamEngine() = default;

void StreamEngine::ingest(ConstMatrixView batch) {
  if (batch.empty()) return;
  if (d_ == 0) d_ = batch.cols();
  if (batch.cols() != d_)
    throw std::invalid_argument("stream: batch has " +
                                std::to_string(batch.cols()) +
                                " columns, stream has " + std::to_string(d_));
  stats_.rows += batch.rows();

  if (!ready()) {
    // Buffer rows until the configured init has k rows to draw from; a
    // first batch that is already big enough skips the copy entirely.
    if (seed_rows_ == 0 && batch.rows() >= static_cast<index_t>(opts_.k)) {
      centroids_ = init_centroids(batch, opts_);
      apply_batch(batch);
      return;
    }
    const index_t need = seed_rows_ + batch.rows();
    if (seed_buffer_.rows() < need) {
      DenseMatrix grown(std::max(need, seed_buffer_.rows() * 2), d_);
      if (seed_rows_ > 0)
        std::memcpy(grown.data(), seed_buffer_.data(),
                    static_cast<std::size_t>(seed_rows_) * d_ *
                        sizeof(value_t));
      seed_buffer_ = std::move(grown);
    }
    std::memcpy(seed_buffer_.row(seed_rows_), batch.data(),
                batch.size() * sizeof(value_t));
    seed_rows_ = need;
    if (seed_rows_ >= static_cast<index_t>(opts_.k)) seed_from_buffer();
    return;
  }
  apply_batch(batch);
}

void StreamEngine::seed_from_buffer() {
  const ConstMatrixView seed(seed_buffer_.data(), seed_rows_, d_);
  centroids_ = init_centroids(seed, opts_);
  apply_batch(seed);
  seed_buffer_ = DenseMatrix();
  seed_rows_ = 0;
}

void StreamEngine::apply_batch(ConstMatrixView batch) {
  WallTimer timer;
  // Batch/row throughput is deterministic (replaying a stream ingests the
  // same rows in the same batches); the phase spans below are timing.
  {
    using obs::Det;
    obs::Registry& reg = obs::Registry::global();
    reg.counter("stream.batches", Det::kDeterministic).inc();
    reg.counter("stream.rows", Det::kDeterministic)
        .add(static_cast<std::uint64_t>(batch.rows()));
  }
  const index_t m = batch.rows();
  const int k = opts_.k;
  const int T = impl_->threads;
  const kernels::Ops& K = *impl_->ops;

  impl_->pack.pack(centroids_);
  const index_t task_size =
      sched::Scheduler::resolve_task_size(m, opts_.task_size);
  const auto chunks = static_cast<std::size_t>(
      sched::Scheduler::num_chunks(m, task_size));
  if (impl_->accum == nullptr || impl_->accum->size() != chunks)
    impl_->accum =
        std::make_unique<ChunkAccum<LocalCentroids>>(chunks, k, d_);
  else
    impl_->accum->next_iteration();
  impl_->chunk_sse.assign(chunks, 0.0);

  ChunkAccum<LocalCentroids>& accum = *impl_->accum;
  std::vector<double>& chunk_sse = impl_->chunk_sse;
  auto& sched = impl_->sched;
  sched.begin_chunks(m, task_size, nullptr);
  {
    obs::Span span_assign("assign");
    sched.run([&](int tid) {
      sched::Task task;
      while (sched.next_chunk(tid, task)) {
        LocalCentroids& acc = accum.touch(task.chunk);
        double sse = 0.0;
        for (index_t r = task.begin; r < task.end; ++r) {
          const value_t* row = batch.row(r);
          value_t best_sq = 0;
          const cluster_t best = K.nearest_blocked(row, impl_->pack, &best_sq);
          acc.add(best, row);
          sse += static_cast<double>(best_sq);
        }
        chunk_sse[task.chunk] = sse;
      }
      // One barrier, then the fixed-tree fold into slot 0 (DESIGN.md §7).
      sched.barrier().arrive_and_wait();
      accum.fold(tid, T, sched.barrier());
    });
  }

  // Decayed update, applied sequentially in cluster order: a pure function
  // of (previous state, merged batch accumulator) — no thread dependence.
  obs::Span span_update("update");
  const LocalCentroids& merged = accum.merged();
  const double decay = sopts_.decay;
  for (int c = 0; c < k; ++c) {
    const auto m_c = static_cast<double>(merged.count(c));
    const double w_old = weights_[static_cast<std::size_t>(c)];
    const double w_new = decay * w_old + m_c;
    if (m_c > 0) {
      const value_t* s = merged.sum(static_cast<cluster_t>(c));
      value_t* centre = centroids_.row(static_cast<index_t>(c));
      for (index_t j = 0; j < d_; ++j)
        centre[j] = (decay * w_old * centre[j] + s[j]) / w_new;
      counts_[static_cast<std::size_t>(c)] +=
          static_cast<std::int64_t>(merged.count(c));
    }
    weights_[static_cast<std::size_t>(c)] = w_new;
  }

  double sse = 0.0;
  for (const double e : chunk_sse) sse += e;
  stats_.last_batch_sse = sse;
  ++stats_.batches;
  stats_.batch_times.record(timer.elapsed());

  if (sopts_.snapshot_every > 0 &&
      stats_.batches % static_cast<std::uint64_t>(sopts_.snapshot_every) == 0) {
    save_snapshot(sopts_.snapshot_path);
    ++stats_.snapshots;
  }
}

index_t StreamEngine::ingest_file(const std::string& path) {
  data::RowReader reader(path);
  if (d_ != 0 && reader.d() != d_)
    throw std::invalid_argument("stream: " + path + " has d=" +
                                std::to_string(reader.d()) +
                                ", stream has d=" + std::to_string(d_));
  DenseMatrix batch(std::min(sopts_.batch_rows, reader.n()), reader.d());
  for (index_t begin = 0; begin < reader.n(); begin += sopts_.batch_rows) {
    const index_t end = std::min(reader.n(), begin + sopts_.batch_rows);
    MutMatrixView view(batch.data(), end - begin, reader.d());
    reader.read(begin, end, view);
    ingest(ConstMatrixView(view.data(), view.rows(), view.cols()));
  }
  return reader.n();
}

sem::Checkpoint StreamEngine::snapshot() const {
  if (!ready())
    throw std::runtime_error("stream: cannot snapshot before the first batch");
  sem::Checkpoint ckpt;
  ckpt.iteration = stats_.batches;
  ckpt.centroids = centroids_;
  ckpt.weights = weights_;
  ckpt.counts = counts_;
  return ckpt;
}

void StreamEngine::save_snapshot(const std::string& path) const {
  sem::save_checkpoint(path, snapshot());
}

void StreamEngine::restore(const sem::Checkpoint& ckpt) {
  if (ckpt.weights.empty())
    throw std::invalid_argument(
        "stream: checkpoint has no weights block (not a stream snapshot)");
  if (ckpt.k() != opts_.k ||
      ckpt.weights.size() != static_cast<std::size_t>(opts_.k) ||
      ckpt.counts.size() != static_cast<std::size_t>(opts_.k))
    throw std::invalid_argument("stream: snapshot k mismatch");
  if (d_ != 0 && ckpt.centroids.cols() != d_)
    throw std::invalid_argument("stream: snapshot d mismatch");
  centroids_ = ckpt.centroids;
  d_ = centroids_.cols();
  weights_ = ckpt.weights;
  counts_ = ckpt.counts;
  stats_.batches = ckpt.iteration;
  seed_buffer_ = DenseMatrix();
  seed_rows_ = 0;
}

}  // namespace knor::stream
