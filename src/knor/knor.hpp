// knor — public umbrella header.
//
// Reproduction of "knor: A NUMA-Optimized In-Memory, Distributed and
// Semi-External-Memory k-means Library" (Mhembere et al., HPDC 2017).
//
//   knor::kmeans(data, opts)            — knori, in-memory NUMA-optimized
//   knor::sem::kmeans(path, opts, sopts) — knors, semi-external memory
//   knor::dist::kmeans(spec, opts, dopts)— knord, distributed (MPI-lite)
//   knor::stream::StreamEngine           — streaming ingestion (unbounded)
//   knor::stream::AssignServer           — assignment serving over frozen
//                                          centroids
//   knor::serve::QueryFrontEnd           — concurrent multi-client query
//                                          front end (batching + top-m)
//
// Determinism (the contract every entry point shares): given the same
// data, Options and seed, every module produces the same clustering —
// assignments, centroids, iteration count — independent of thread count,
// rank count, scheduling policy or steal schedule; only timing fields and
// instrumentation that attributes work to threads vary between runs.
// Within one module the guarantee is bitwise (per-chunk reductions keyed
// to the (n, task_size) grid, DESIGN.md §7); across modules with
// different reduction shapes it is last-ulp, upgraded to bitwise on
// integer-valued data (tests/conformance_test.cpp). The guarantee is PER
// SELECTED SIMD ISA (Options::simd / --simd / KNOR_SIMD): each ISA has a
// fixed lane count and reduction tree so it is bitwise self-stable, but
// different ISAs may differ in the last ulp on fractional data;
// --simd scalar reproduces the pre-SIMD kernels bit-for-bit (DESIGN.md
// §8). The per-module headers state the precise guarantee; DESIGN.md
// §5/§7/§8 derive it.
//
// See README.md for a quickstart and DESIGN.md for the architecture.
#pragma once

#include "common/dense_matrix.hpp"      // IWYU pragma: export
#include "common/logger.hpp"            // IWYU pragma: export
#include "common/types.hpp"             // IWYU pragma: export
#include "core/engines.hpp"             // IWYU pragma: export
#include "core/init.hpp"                // IWYU pragma: export
#include "core/kmeans_types.hpp"        // IWYU pragma: export
#include "core/knori.hpp"               // IWYU pragma: export
#include "core/variants.hpp"            // IWYU pragma: export
#include "data/generator.hpp"           // IWYU pragma: export
#include "data/matrix_io.hpp"           // IWYU pragma: export
#include "dist/knord.hpp"               // IWYU pragma: export
#include "obs/export.hpp"               // IWYU pragma: export
#include "obs/registry.hpp"             // IWYU pragma: export
#include "obs/span.hpp"                 // IWYU pragma: export
#include "sem/sem_kmeans.hpp"           // IWYU pragma: export
#include "serve/front_end.hpp"          // IWYU pragma: export
#include "serve/loadgen.hpp"            // IWYU pragma: export
#include "stream/assign_server.hpp"     // IWYU pragma: export
#include "stream/stream_engine.hpp"     // IWYU pragma: export
