#include "sched/thread_pool.hpp"

#include "common/logger.hpp"
#include "numa/thread_bind.hpp"

namespace knor::sched {

ThreadPool::ThreadPool(int threads, const numa::Topology& topo, bool bind)
    : topo_(topo), bind_(bind) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  remaining_ = static_cast<int>(workers_.size());
  first_error_ = nullptr;
  ++epoch_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(int id) {
  if (bind_) numa::bind_current_thread_to_node(topo_, node_of(id));
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    std::exception_ptr err;
    try {
      (*job)(id);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace knor::sched
