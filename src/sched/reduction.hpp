// Parallel pairwise tree reduction (the paper's "parallel funnelsort-like
// reduction routine", §5.2): merge T per-thread structures in O(log T)
// barrier-separated rounds; round r merges item i+stride into item i in
// parallel across threads.
//
// Runs *inside* an existing worker context: every worker calls
// tree_reduce(tid, T, barrier, merge) after arriving at the pre-merge
// barrier; `merge(dst, src)` must combine item src into item dst.
// After return, item 0 holds the full reduction.
#pragma once

#include <functional>

#include "sched/barrier.hpp"

namespace knor::sched {

template <typename MergeFn>
void tree_reduce(int tid, int parties, Barrier& barrier, MergeFn&& merge) {
  for (int stride = 1; stride < parties; stride *= 2) {
    if (tid % (2 * stride) == 0 && tid + stride < parties)
      merge(tid, tid + stride);
    barrier.arrive_and_wait();
  }
}

}  // namespace knor::sched
