// Parallel pairwise tree reduction (the paper's "parallel funnelsort-like
// reduction routine", §5.2): merge T per-thread structures in O(log T)
// barrier-separated rounds; round r merges item i+stride into item i in
// parallel across threads.
//
// Runs *inside* an existing worker context: every worker calls
// tree_reduce(tid, T, barrier, merge) after arriving at the pre-merge
// barrier; `merge(dst, src)` must combine item src into item dst.
// After return, item 0 holds the full reduction.
#pragma once

#include <cstddef>
#include <functional>

#include "sched/barrier.hpp"

namespace knor::sched {

template <typename MergeFn>
void tree_reduce(int tid, int parties, Barrier& barrier, MergeFn&& merge) {
  for (int stride = 1; stride < parties; stride *= 2) {
    if (tid % (2 * stride) == 0 && tid + stride < parties)
      merge(tid, tid + stride);
    barrier.arrive_and_wait();
  }
}

/// Fixed-association parallel fold of `count` slots into slot 0. The merge
/// tree is a pure function of `count` (round r merges slot i + stride into
/// slot i for i % (2 * stride) == 0); the `parties` workers only *execute*
/// the pairs — dealt round-robin, barrier between rounds — so the result is
/// bitwise identical for any thread count. This is what keeps the engines'
/// per-chunk centroid reductions deterministic under work stealing AND
/// across thread counts (chunk grids don't depend on T; see DESIGN.md §7).
/// Every worker must call it; merge(dst, src) combines slot src into dst.
template <typename MergeFn>
void tree_reduce_fixed(int tid, int parties, std::size_t count,
                       Barrier& barrier, MergeFn&& merge) {
  for (std::size_t stride = 1; stride < count; stride *= 2) {
    std::size_t pair = 0;
    for (std::size_t i = 0; i + stride < count; i += 2 * stride, ++pair)
      if (pair % static_cast<std::size_t>(parties) ==
          static_cast<std::size_t>(tid))
        merge(i, i + stride);
    barrier.arrive_and_wait();
  }
}

}  // namespace knor::sched
