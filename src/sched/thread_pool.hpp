// NUMA-bound worker thread pool.
//
// Workers are created once per pool, bound to NUMA nodes per the paper's
// Figure 1 layout (thread t -> node t % N), and reused across k-means
// iterations; `run(fn)` executes fn(thread_id) on every worker and joins.
// This mirrors knor's long-lived pthread workers rather than spawning
// threads per iteration.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "numa/partitioner.hpp"
#include "numa/topology.hpp"

namespace knor::sched {

class ThreadPool {
 public:
  /// Create `threads` workers over `topo`; worker t is bound to node t % N.
  ThreadPool(int threads, const numa::Topology& topo, bool bind = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }
  const numa::Topology& topology() const { return topo_; }
  /// NUMA node worker `t` is bound to.
  int node_of(int t) const { return t % topo_.num_nodes(); }

  /// Run fn(thread_id) on every worker; blocks until all complete.
  /// Exceptions thrown by workers are captured and the first is rethrown.
  void run(const std::function<void(int)>& fn);

 private:
  void worker_loop(int id);

  numa::Topology topo_;
  bool bind_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace knor::sched
