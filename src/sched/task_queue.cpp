#include "sched/task_queue.hpp"

#include <algorithm>

namespace knor::sched {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kNumaAware: return "numa-aware";
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kStatic: return "static";
  }
  return "?";
}

TaskQueue::TaskQueue(const numa::Partitioner& parts, SchedPolicy policy,
                     index_t task_size)
    : partitioner_(parts),
      policy_(policy),
      task_size_(task_size == 0 ? kDefaultTaskSize : task_size),
      stats_(static_cast<std::size_t>(parts.threads())) {
  parts_.reserve(static_cast<std::size_t>(parts.threads()));
  for (int t = 0; t < parts.threads(); ++t)
    parts_.push_back(std::make_unique<Partition>());
  reset();
}

void TaskQueue::reset() {
  for (int t = 0; t < partitioner_.threads(); ++t) {
    auto& part = *parts_[static_cast<std::size_t>(t)];
    std::lock_guard<std::mutex> lock(part.mu);
    part.tasks.clear();
    const numa::RowRange rows = partitioner_.thread_rows(t);
    for (index_t b = rows.begin; b < rows.end; b += task_size_) {
      Task task;
      task.begin = b;
      task.end = std::min(rows.end, b + task_size_);
      task.home_partition = t;
      part.tasks.push_back(task);
    }
  }
}

bool TaskQueue::pop_from(int partition, Task& out) {
  auto& part = *parts_[static_cast<std::size_t>(partition)];
  std::lock_guard<std::mutex> lock(part.mu);
  if (part.tasks.empty()) return false;
  out = part.tasks.front();
  part.tasks.pop_front();
  return true;
}

bool TaskQueue::next(int thread, Task& out) {
  auto& st = stats_[static_cast<std::size_t>(thread)].s;

  // 1. Own partition first (all policies).
  if (pop_from(thread, out)) {
    ++st.own;
    return true;
  }
  if (policy_ == SchedPolicy::kStatic) return false;

  const int T = partitions();
  const int my_node = partitioner_.node_of_thread(thread);

  if (policy_ == SchedPolicy::kFifo) {
    // Steal from any partition in index order, NUMA-oblivious.
    for (int i = 1; i < T; ++i) {
      const int victim = (thread + i) % T;
      if (pop_from(victim, out)) {
        if (partitioner_.node_of_thread(victim) == my_node)
          ++st.same_node;
        else
          ++st.remote_node;
        return true;
      }
    }
    return false;
  }

  // NUMA-aware: 2. same-node partitions first.
  for (int i = 1; i < T; ++i) {
    const int victim = (thread + i) % T;
    if (partitioner_.node_of_thread(victim) != my_node) continue;
    if (pop_from(victim, out)) {
      ++st.same_node;
      return true;
    }
  }
  // 3. One cycle over remote partitions (lower priority) — accept the first
  // available remote task rather than starve.
  for (int i = 1; i < T; ++i) {
    const int victim = (thread + i) % T;
    if (partitioner_.node_of_thread(victim) == my_node) continue;
    if (pop_from(victim, out)) {
      ++st.remote_node;
      return true;
    }
  }
  return false;
}

StealStats TaskQueue::stats(int thread) const {
  return stats_[static_cast<std::size_t>(thread)].s;
}

StealStats TaskQueue::total_stats() const {
  StealStats total;
  for (const auto& ts : stats_) {
    total.own += ts.s.own;
    total.same_node += ts.s.same_node;
    total.remote_node += ts.s.remote_node;
  }
  return total;
}

void TaskQueue::reset_stats() {
  for (auto& ts : stats_) ts.s = StealStats{};
}

}  // namespace knor::sched
