#include "sched/scheduler.hpp"

#include <cassert>
#include <stdexcept>

#include "numa/thread_bind.hpp"
#include "obs/registry.hpp"

namespace knor::sched {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kNumaAware: return "numa-aware";
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kStatic: return "static";
  }
  return "?";
}

index_t Scheduler::auto_task_size(index_t n) {
  if (n == 0) return kMinTaskSize;
  const index_t target = (n + kAutoChunkTarget - 1) / kAutoChunkTarget;
  return std::max(kMinTaskSize, std::min(kPaperTaskSize, target));
}

index_t Scheduler::resolve_task_size(index_t n, index_t requested) {
  // Floor both paths so the chunk grid (and the per-chunk accumulator
  // arrays the engines key off it) stays bounded: beyond kMaxChunks *
  // kPaperTaskSize rows even the adaptive size would exceed the cap.
  // Idempotent: resolving an already-resolved size returns it unchanged.
  const index_t floor = (n + kMaxChunks - 1) / kMaxChunks;
  return std::max(requested == 0 ? auto_task_size(n) : requested, floor);
}

Scheduler::Scheduler(int threads, const numa::Topology& topo, bool bind,
                     SchedPolicy policy)
    : topo_(topo), policy_(policy), bind_(bind), distance_(topo) {
  if (threads < 1) threads = 1;
  barrier_ = std::make_unique<Barrier>(threads);
  stats_.resize(static_cast<std::size_t>(threads));
  own_queue_.resize(static_cast<std::size_t>(threads));
  steal_order_.resize(static_cast<std::size_t>(threads));

  const int N = topo_.num_nodes();
  const int queues = policy_ == SchedPolicy::kFifo     ? 1
                     : policy_ == SchedPolicy::kStatic ? threads
                                                       : N;
  queues_.reserve(static_cast<std::size_t>(queues));
  for (int q = 0; q < queues; ++q)
    queues_.push_back(std::make_unique<ClaimQueue>());

  for (int t = 0; t < threads; ++t) {
    switch (policy_) {
      case SchedPolicy::kFifo:
        own_queue_[static_cast<std::size_t>(t)] = 0;
        break;
      case SchedPolicy::kStatic:
        own_queue_[static_cast<std::size_t>(t)] = t;
        break;
      case SchedPolicy::kNumaAware: {
        const int node = t % N;
        own_queue_[static_cast<std::size_t>(t)] = node;
        steal_order_[static_cast<std::size_t>(t)] =
            distance_.victim_order(node);
        break;
      }
    }
  }

  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void Scheduler::run(const std::function<void(int)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  remaining_ = threads();
  first_error_ = nullptr;
  ++epoch_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void Scheduler::worker_loop(int id) {
  if (bind_) numa::bind_current_thread_to_node(topo_, node_of_thread(id));
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    std::exception_ptr err;
    try {
      (*job)(id);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void Scheduler::begin_chunks(index_t n, index_t task_size,
                             const numa::Partitioner* parts) {
  assert(parts == nullptr || parts->threads() == threads());
  n_ = n;
  task_size_ = resolve_task_size(n, task_size);
  const index_t chunks = num_chunks(n, task_size_);
  if (chunks > static_cast<index_t>(UINT32_MAX))
    throw std::invalid_argument("Scheduler: task_size yields > 2^32 chunks");

  home_.assign(static_cast<std::size_t>(chunks), 0);
  for (auto& q : queues_) q->chunks.clear();

  const int T = threads();
  // Without a partitioner, deal chunks to threads in contiguous blocks
  // (the same block_range carve the partitioner applies to rows).
  int fallback_home = 0;
  for (index_t c = 0; c < chunks; ++c) {
    int home;
    if (parts != nullptr) {
      home = parts->thread_of_row(c * task_size_);
    } else {
      while (fallback_home + 1 < T &&
             numa::block_range(chunks, T, fallback_home).end <= c)
        ++fallback_home;
      home = fallback_home;
    }
    home_[static_cast<std::size_t>(c)] = home;
    const int q = policy_ == SchedPolicy::kFifo     ? 0
                  : policy_ == SchedPolicy::kStatic ? home
                                                    : node_of_thread(home);
    queues_[static_cast<std::size_t>(q)]->chunks.push_back(
        static_cast<std::uint32_t>(c));
  }
  for (auto& q : queues_) q->fill_done();
  // Chunk-grid size is a pure function of (n, task_size) — deterministic,
  // unlike the per-thread acquisition stats which follow the schedule.
  obs::Registry::global()
      .counter("sched.chunks", obs::Det::kDeterministic)
      .add(static_cast<std::uint64_t>(chunks));
}

void Scheduler::make_task(std::uint32_t chunk, int thread, Task& out) {
  out.chunk = chunk;
  out.begin = static_cast<index_t>(chunk) * task_size_;
  out.end = std::min(n_, out.begin + task_size_);
  out.home_thread = home_[chunk];
  out.home_node = node_of_thread(out.home_thread);

  auto& st = stats_[static_cast<std::size_t>(thread)].s;
  if (out.home_thread == thread)
    ++st.own;
  else if (out.home_node == node_of_thread(thread))
    ++st.same_node;
  else
    ++st.remote_node;
}

bool Scheduler::next_chunk(int thread, Task& out) {
  std::uint32_t c;
  auto& own = *queues_[static_cast<std::size_t>(
      own_queue_[static_cast<std::size_t>(thread)])];
  if (own.pop_front(c)) {
    make_task(c, thread, out);
    return true;
  }
  for (const int victim : steal_order_[static_cast<std::size_t>(thread)]) {
    if (queues_[static_cast<std::size_t>(victim)]->pop_back(c)) {
      make_task(c, thread, out);
      return true;
    }
  }
  return false;
}

void Scheduler::parallel_for(index_t n, index_t task_size,
                             const numa::Partitioner* parts,
                             const std::function<void(int, const Task&)>& body) {
  begin_chunks(n, task_size, parts);
  run([&](int tid) {
    Task task;
    while (next_chunk(tid, task)) body(tid, task);
  });
}

StealStats Scheduler::stats(int thread) const {
  return stats_[static_cast<std::size_t>(thread)].s;
}

StealStats Scheduler::total_stats() const {
  StealStats total;
  for (const auto& ts : stats_) {
    total.own += ts.s.own;
    total.same_node += ts.s.same_node;
    total.remote_node += ts.s.remote_node;
  }
  return total;
}

void Scheduler::reset_stats() {
  for (auto& ts : stats_) ts.s = StealStats{};
}

}  // namespace knor::sched
