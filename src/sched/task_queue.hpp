// NUMA-aware partitioned priority task queue (paper Figure 2).
//
// The data/task index range [0, n) is split into T partitions matching the
// data partitioning (partition t = thread t's rows, resident on thread t's
// NUMA node). Each partition holds a deque of fixed-size block tasks behind
// its own lock, so lock contention is spread T ways.
//
// Acquisition policy (NUMA-aware mode):
//   1. pop from the caller's own partition               (local memory)
//   2. steal from partitions bound to the same NUMA node (local memory)
//   3. cycle once over all partitions preferring same-node tasks before
//      settling on a remote-node task                    (avoids starvation)
//
// Alternative policies used as baselines by the Figure 5 bench:
//   * kStatic — own partition only, no stealing (pre-assigned n/T rows).
//   * kFifo   — own partition first, then steal from any partition in
//     index order regardless of NUMA placement.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "common/types.hpp"
#include "numa/partitioner.hpp"

namespace knor::sched {

enum class SchedPolicy { kNumaAware, kFifo, kStatic };

const char* to_string(SchedPolicy p);

struct Task {
  index_t begin = 0;
  index_t end = 0;            ///< exclusive
  int home_partition = -1;    ///< partition (thread) whose data this is
  index_t size() const { return end - begin; }
};

struct StealStats {
  std::uint64_t own = 0;           ///< tasks taken from own partition
  std::uint64_t same_node = 0;     ///< stolen from a same-NUMA-node partition
  std::uint64_t remote_node = 0;   ///< stolen from a remote-NUMA-node partition
  std::uint64_t total() const { return own + same_node + remote_node; }
};

class TaskQueue {
 public:
  /// Default task size (rows per task) from the paper: 8192 points.
  static constexpr index_t kDefaultTaskSize = 8192;

  TaskQueue(const numa::Partitioner& parts, SchedPolicy policy,
            index_t task_size = kDefaultTaskSize);

  /// Refill every partition with its block tasks; called once per k-means
  /// iteration. Not thread-safe with concurrent next().
  void reset();

  /// Acquire the next task for `thread`. Returns false when the whole queue
  /// is drained. Thread-safe.
  bool next(int thread, Task& out);

  SchedPolicy policy() const { return policy_; }
  index_t task_size() const { return task_size_; }
  int partitions() const { return static_cast<int>(parts_.size()); }

  /// Per-thread acquisition statistics since the last reset_stats().
  StealStats stats(int thread) const;
  StealStats total_stats() const;
  void reset_stats();

 private:
  struct alignas(kCacheLine) Partition {
    mutable std::mutex mu;
    std::deque<Task> tasks;
  };
  struct alignas(kCacheLine) ThreadStats {
    StealStats s;
  };

  bool pop_from(int partition, Task& out);

  const numa::Partitioner& partitioner_;
  SchedPolicy policy_;
  index_t task_size_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<ThreadStats> stats_;
};

}  // namespace knor::sched
