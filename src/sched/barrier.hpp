// Sense-reversing centralized barrier.
//
// ||Lloyd's needs exactly one barrier per iteration (before the per-thread
// centroid merge); a sense-reversing barrier is reusable across iterations
// without reinitialization and has no allocation on the wait path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace knor::sched {

class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties), waiting_(0), sense_(false) {}

  /// Block until all `parties` threads have arrived.
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    const bool my_sense = !sense_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      sense_ = my_sense;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return sense_ == my_sense; });
    }
  }

  int parties() const { return parties_; }

 private:
  const int parties_;
  int waiting_;
  bool sense_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace knor::sched
