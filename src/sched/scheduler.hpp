// NUMA-partitioned work-stealing scheduler (paper §5.2, Figures 1-2 and 5).
//
// This replaces the seed's flat thread pool + per-thread mutex queue with a
// single substrate that owns both the workers and the work:
//
//   * One lock-free deque of chunk ids per NUMA node. A chunk is a fixed
//     [begin, end) row range of the global index space; the chunk grid is a
//     pure function of (n, task_size) — independent of the thread count —
//     which is what lets per-chunk reductions stay bitwise identical across
//     thread counts and steal schedules (see DESIGN.md §7).
//   * Hierarchical acquisition: workers pop their own node's deque from the
//     FRONT (ascending chunk ids -> sequential row access), and steal from
//     the BACK of remote deques (the work farthest from the victim's working
//     set), visiting victims in ascending interconnect distance order
//     (numa::NodeDistance, SLIT-style).
//   * Adaptive task sizing: task_size = 0 resolves to a size targeting a
//     fixed chunk count (kAutoChunkTarget), clamped to the paper's 8192-row
//     default; explicit sizes (the abl_task_size knob) are honored but
//     floored so the grid never exceeds kMaxChunks accumulator slots.
//   * Reusable parallel APIs: run() (one call per worker), parallel_for()
//     (chunked + stolen), and reduce_by_node() (merge per-thread partials
//     node-by-node in node order — local merges first, then one ordered
//     cross-node fold).
//
// Scheduling policies compared by the Figure 5 bench:
//   * kNumaAware — per-node deques + hierarchical stealing (knor).
//   * kFifo     — one flat shared queue, NUMA-oblivious: the "flat thread
//                 pool" model of the frameworks the paper benchmarks against.
//   * kStatic   — per-thread pre-assignment, no stealing at all.
// All three produce bitwise-identical results for the engines built on the
// chunk API; only the execution schedule (and therefore time) differs.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "numa/cost_model.hpp"
#include "numa/partitioner.hpp"
#include "numa/topology.hpp"
#include "sched/barrier.hpp"

namespace knor::sched {

enum class SchedPolicy { kNumaAware, kFifo, kStatic };

const char* to_string(SchedPolicy p);

/// A claimed unit of work: rows [begin, end) of chunk `chunk`.
struct Task {
  index_t begin = 0;
  index_t end = 0;             ///< exclusive
  std::uint32_t chunk = 0;     ///< index in the global chunk grid
  int home_thread = -1;        ///< thread whose static share this chunk is
  int home_node = -1;          ///< NUMA node owning the chunk's rows
  index_t size() const { return end - begin; }
};

struct StealStats {
  std::uint64_t own = 0;          ///< chunks from the caller's own share
  std::uint64_t same_node = 0;    ///< intra-node rebalancing (same deque)
  std::uint64_t remote_node = 0;  ///< cross-node steals
  std::uint64_t total() const { return own + same_node + remote_node; }
};

class Scheduler {
 public:
  /// The paper's task size (§8.4): 8192 points per task.
  static constexpr index_t kPaperTaskSize = 8192;
  /// Adaptive sizing targets this many chunks (thread-count independent).
  static constexpr index_t kAutoChunkTarget = 256;
  /// Hard ceiling on the chunk grid: bounds per-chunk accumulator memory.
  static constexpr index_t kMaxChunks = 4096;
  static constexpr index_t kMinTaskSize = 64;

  /// Task size for `n` rows when the knob is 0 (adaptive): aim for
  /// kAutoChunkTarget chunks, clamped to [kMinTaskSize, kPaperTaskSize].
  /// Depends on n only, never on the thread count.
  static index_t auto_task_size(index_t n);

  /// Resolve the Options::task_size knob: 0 -> auto_task_size(n); explicit
  /// sizes are floored so ceil(n / size) <= kMaxChunks.
  static index_t resolve_task_size(index_t n, index_t requested);

  static index_t num_chunks(index_t n, index_t task_size) {
    return task_size == 0 ? 0 : (n + task_size - 1) / task_size;
  }

  /// Spawn `threads` workers over `topo` (thread t on node t % N, matching
  /// numa::Partitioner). `bind` pins each worker to its node's CPUs.
  Scheduler(int threads, const numa::Topology& topo, bool bind = true,
            SchedPolicy policy = SchedPolicy::kNumaAware);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }
  const numa::Topology& topology() const { return topo_; }
  SchedPolicy policy() const { return policy_; }
  int node_of_thread(int t) const { return t % topo_.num_nodes(); }
  const numa::NodeDistance& distances() const { return distance_; }

  /// Barrier over all workers, reusable across phases; only valid inside
  /// fn passed to run().
  Barrier& barrier() { return *barrier_; }

  /// Run fn(thread_id) on every worker; blocks until all complete.
  /// Exceptions thrown by workers are captured and the first is rethrown.
  void run(const std::function<void(int)>& fn);

  // --- chunk phase API ------------------------------------------------------
  // Driver-side begin_chunks() lays the chunk grid over [0, n) and fills the
  // policy's deques; workers then drain via next_chunk(tid, task). When a
  // Partitioner is supplied, a chunk's home thread/node follow the data
  // placement (thread_of_row of its first row); otherwise chunks are dealt
  // to threads in contiguous blocks.

  /// Not thread-safe with concurrent next_chunk().
  void begin_chunks(index_t n, index_t task_size,
                    const numa::Partitioner* parts = nullptr);
  index_t task_size() const { return task_size_; }
  index_t chunk_count() const { return static_cast<index_t>(home_.size()); }

  /// Acquire the next chunk for `thread`: own deque front first, then steal
  /// from the back of remote deques in ascending node distance. Returns
  /// false when all deques are drained. Thread-safe.
  bool next_chunk(int thread, Task& out);

  /// Chunked work-stealing loop: body(tid, task) over [0, n).
  void parallel_for(index_t n, index_t task_size,
                    const numa::Partitioner* parts,
                    const std::function<void(int, const Task&)>& body);

  /// In-worker: merge per-thread partials into slot 0, node by node —
  /// each node's threads tree-merge into the node's lead thread (lowest
  /// tid), then thread 0 folds the node leads in ascending node order.
  /// The merge tree is a pure function of (threads, nodes): deterministic
  /// for a fixed configuration. Every worker must call it (it barriers);
  /// merge(dst_tid, src_tid) combines thread src's partial into dst's.
  template <typename MergeFn>
  void reduce_by_node(int tid, MergeFn&& merge) {
    const int T = threads();
    const int N = topo_.num_nodes();
    const int local = tid / N;  // index among this node's threads
    const int per_node_max = (T + N - 1) / N;
    for (int stride = 1; stride < per_node_max; stride *= 2) {
      if (local % (2 * stride) == 0 && tid + stride * N < T)
        merge(tid, tid + stride * N);
      barrier_->arrive_and_wait();
    }
    if (tid == 0)
      for (int lead = 1; lead < std::min(N, T); ++lead) merge(0, lead);
    barrier_->arrive_and_wait();
  }

  /// Per-thread acquisition statistics since the last reset_stats().
  StealStats stats(int thread) const;
  StealStats total_stats() const;
  void reset_stats();

 private:
  /// A deque of chunk ids claimed lock-free from either end: the 64-bit
  /// `range` packs (front index << 32 | back index); a CAS moves one end
  /// inward. Indices only ever move inward between begin_chunks() calls
  /// (which happen while workers are quiescent), so there is no ABA.
  struct alignas(kCacheLine) ClaimQueue {
    std::vector<std::uint32_t> chunks;
    std::atomic<std::uint64_t> range{0};

    void fill_done() {
      range.store(static_cast<std::uint64_t>(chunks.size()),
                  std::memory_order_release);
    }
    bool pop_front(std::uint32_t& out) {
      std::uint64_t r = range.load(std::memory_order_acquire);
      for (;;) {
        const auto front = static_cast<std::uint32_t>(r >> 32);
        const auto back = static_cast<std::uint32_t>(r);
        if (front >= back) return false;
        const std::uint64_t next =
            (static_cast<std::uint64_t>(front + 1) << 32) | back;
        if (range.compare_exchange_weak(r, next, std::memory_order_acq_rel)) {
          out = chunks[front];
          return true;
        }
      }
    }
    bool pop_back(std::uint32_t& out) {
      std::uint64_t r = range.load(std::memory_order_acquire);
      for (;;) {
        const auto front = static_cast<std::uint32_t>(r >> 32);
        const auto back = static_cast<std::uint32_t>(r);
        if (front >= back) return false;
        const std::uint64_t next =
            (static_cast<std::uint64_t>(front) << 32) | (back - 1);
        if (range.compare_exchange_weak(r, next, std::memory_order_acq_rel)) {
          out = chunks[back - 1];
          return true;
        }
      }
    }
  };
  struct alignas(kCacheLine) ThreadStats {
    StealStats s;
  };

  void worker_loop(int id);
  void make_task(std::uint32_t chunk, int thread, Task& out);

  numa::Topology topo_;
  SchedPolicy policy_;
  bool bind_;
  numa::NodeDistance distance_;
  std::vector<std::thread> workers_;
  std::unique_ptr<Barrier> barrier_;

  // Work state (rebuilt by begin_chunks).
  index_t n_ = 0;
  index_t task_size_ = 0;
  std::vector<int> home_;  ///< chunk -> home thread
  std::vector<std::unique_ptr<ClaimQueue>> queues_;
  std::vector<int> own_queue_;                  ///< thread -> queue index
  std::vector<std::vector<int>> steal_order_;   ///< thread -> victim queues
  std::vector<ThreadStats> stats_;

  // run() machinery (long-lived workers, one job at a time).
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace knor::sched
